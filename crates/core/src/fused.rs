//! Fused threaded-code loop traces (the [`crate::SimOptions::backend`]
//! `Fused` backend).
//!
//! The interpreter's inner loop pays an enum dispatch, slot lookups through
//! `Option<SimValue>`, and scheduler bookkeeping for every op of every loop
//! iteration — even though an `affine.for` body is a *static* op sequence
//! whose operand slots, cycle costs, and constants never change across
//! iterations. This module compiles such bodies once, at [`Plan::build`]
//! time, into flat instruction tables ([`FusedLoop`]) whose operands are
//! pre-resolved virtual-register indices into a dense `i64` bank. The trace
//! runner ([`Engine::run_fused`]) then executes whole loop nests without
//! touching the frame environment or the event heap, consulting the event
//! engine only at *trace exits*:
//!
//! * **contention** — a timed instruction's finish time reaches another
//!   pending event, so the scheduler must interleave (mirrors the
//!   interpreter's contended-yield path, which never counts a wake);
//! * **completion** — the loop's trip count is exhausted;
//! * **limits** — the event/cycle budgets and the epoch-cadence
//!   cancellation/wall-clock polls, evaluated on exactly the same counter
//!   values (and in the same order) as the interpreter's checks.
//!
//! Counter identity is the contract: `wakes`, `ops_interpreted`,
//! `idle_steps`, per-processor clocks, the horizon, and every memory traffic
//! counter advance bit-identically to the interpreter — enforced by the
//! `fused_differential` test suite and the CI drift guard.
//!
//! **Trace formation** (`build_fused`) is conservative: a loop body fuses
//! only if every op is scalar-integer straight-line work (`affine.load` /
//! `affine.store` / pre-decoded binary arith / `arith.cmpi` / `arith.select`
//! / integer `arith.constant` / `affine.yield`) with no cross-iteration
//! value flow. Anything else — nested loops, launches, tensor ops, unknown
//! predicates, use-before-def — leaves the body to the interpreter, which
//! is always correct.
//!
//! **Runtime preflight** (`run_fused`) re-validates the parts only the
//! running machine knows: the buffers must be live integer tensors of the
//! decoded rank, backed by memories with uniform stateless access latency
//! ([`crate::MemoryBehavior::uniform_scalar_cycles`]), and every
//! loop-invariant input must currently hold a scalar integer. Any mismatch
//! *declines* the trace — the block is marked skipped for the rest of the
//! run and the interpreter takes over. Declining is never an error: it is
//! the escape hatch that keeps cache-backed memories, float data, and
//! malformed programs on the exact interpreter semantics.

use std::cmp::Reverse;
use std::time::Instant;

use equeue_ir::Module;

use crate::engine::{Engine, Frame, OpCode, OpInfo, Slot, Step, OP_EPOCH, WAKE_EPOCH};
use crate::error::{LimitExceeded, LimitKind, Progress, SimError};
use crate::interp::{BinOp, CmpPred};
use crate::machine::AccessKind;
use crate::value::{BufId, CompId, SimValue, TensorData};

// ---------------------------------------------------------------------------
// Trace representation
// ---------------------------------------------------------------------------

/// Why trace formation declined to fuse an `affine.for` body.
///
/// Produced by the compile-time half of the fused backend (the layout
/// prepass) and surfaced through [`crate::PrepassFacts`] so static analysis
/// — and the phase-2 fusion worklist — can see *why* a loop still pays
/// interpreter dispatch. Runtime-only declines (cache-backed memories,
/// non-integer tensors, contended entry) are not represented here: they
/// depend on live machine state and are reported separately by the
/// analyzer's fusibility pass.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FuseDecline {
    /// The body contains a nested `affine.for`/`affine.parallel`: only
    /// innermost 1-D bodies fuse today (the phase-2 worklist).
    MultiLevelNest,
    /// A value is used before its in-body definition — cross-iteration
    /// value flow the straight-line trace cannot model.
    CrossIterationFlow,
    /// The body contains an op the trace compiler does not model
    /// (launches, tensor ops, float constants, unknown predicates, …).
    UnsupportedOp(String),
    /// The body has no instructions; the interpreter's idle-step
    /// accounting is the reference semantics for degenerate loops.
    EmptyBody,
    /// The body is structurally malformed (result-arity mismatches,
    /// inconsistent buffer ranks, out-of-range op ids); execution will
    /// surface the precise typed error.
    Malformed,
}

impl std::fmt::Display for FuseDecline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseDecline::MultiLevelNest => {
                write!(f, "multi-level nest: only innermost 1-D bodies fuse")
            }
            FuseDecline::CrossIterationFlow => {
                write!(f, "cross-iteration value flow (use before in-body def)")
            }
            FuseDecline::UnsupportedOp(name) => {
                write!(f, "unsupported op in body: {name}")
            }
            FuseDecline::EmptyBody => write!(f, "empty body"),
            FuseDecline::Malformed => write!(f, "structurally malformed body"),
        }
    }
}

/// One pre-compiled instruction of a fused loop body. Operands are virtual
/// registers (indices into the trace runner's `i64` bank); `op_pos` is the
/// instruction's op index within the source block, kept so a mid-trace
/// yield can hand the scope back to the interpreter at the exact op
/// boundary (`scope.idx = op_pos + 1`).
#[derive(Debug)]
pub(crate) enum FusedInst {
    /// `affine.load` from buffer table entry `buf` at `indices`.
    Load {
        buf: u32,
        indices: Box<[u32]>,
        dst: u32,
        op_pos: u32,
    },
    /// `affine.store` of register `src` into buffer table entry `buf`.
    Store {
        buf: u32,
        indices: Box<[u32]>,
        src: u32,
        op_pos: u32,
    },
    /// A pre-decoded scalar binary op. `index_typed` arithmetic is address
    /// generation and costs no datapath cycles (same rule as the
    /// interpreter).
    Bin {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        index_typed: bool,
        op_pos: u32,
    },
    /// `arith.cmpi` with a pre-decoded predicate.
    Cmp {
        pred: CmpPred,
        lhs: u32,
        rhs: u32,
        dst: u32,
        op_pos: u32,
    },
    /// `arith.select` (both branches are registers, so evaluating
    /// eagerly is exact).
    Sel {
        cond: u32,
        on_true: u32,
        on_false: u32,
        dst: u32,
        op_pos: u32,
    },
    /// An integer `arith.constant`, re-bound every iteration like the
    /// interpreter does (it still counts as an interpreted op).
    Const { value: i64, dst: u32, op_pos: u32 },
    /// `affine.yield`: pure op accounting.
    Nop { op_pos: u32 },
}

impl FusedInst {
    fn op_pos(&self) -> u32 {
        match self {
            FusedInst::Load { op_pos, .. }
            | FusedInst::Store { op_pos, .. }
            | FusedInst::Bin { op_pos, .. }
            | FusedInst::Cmp { op_pos, .. }
            | FusedInst::Sel { op_pos, .. }
            | FusedInst::Const { op_pos, .. }
            | FusedInst::Nop { op_pos } => *op_pos,
        }
    }
}

/// A fused single-dimension `affine.for` body: the instruction table plus
/// the register-bank layout needed to enter and exit the trace.
///
/// Plain data (no interior mutability, no machine references), so the
/// containing [`Plan`](crate::engine) stays `Send + Sync` and one compiled
/// module can back concurrent simulations.
#[derive(Debug)]
pub(crate) struct FusedLoop {
    /// Body instructions in program order (erased ops omitted).
    insts: Vec<FusedInst>,
    /// Total virtual registers (inputs + defs + induction variable).
    n_regs: u32,
    /// Register holding the induction variable.
    iv_reg: u32,
    /// The induction variable's frame slot.
    iv_slot: Slot,
    /// Loop step (as decoded; the trace re-checks it against the live
    /// [`LoopState`](crate::engine) at entry).
    step: i64,
    /// Loop upper bound (exclusive).
    upper: i64,
    /// Loop-invariant scalar inputs: `(frame slot, register)`.
    inputs: Vec<(Slot, u32)>,
    /// Body-defined values written back at trace exits:
    /// `(register, frame slot)`.
    defs: Vec<(u32, Slot)>,
    /// Buffers the body accesses: `(frame slot, subscript rank)`.
    buffers: Vec<(Slot, u32)>,
}

impl FusedLoop {
    /// Number of trace instructions (for [`crate::PrepassFacts`]).
    pub(crate) fn inst_count(&self) -> usize {
        self.insts.len()
    }
}

// ---------------------------------------------------------------------------
// Trace formation (Plan::build step 6)
// ---------------------------------------------------------------------------

/// Register allocation state while decoding one loop body.
struct RegAlloc<'a> {
    n: u32,
    iv: Slot,
    iv_reg: u32,
    /// Every slot the body defines (any op result), in program order.
    def_slots: &'a [Slot],
    inputs: Vec<(Slot, u32)>,
    /// Slots defined so far, with their registers.
    defs: Vec<(Slot, u32)>,
}

impl RegAlloc<'_> {
    /// Resolves an operand slot to a register; `None` rejects the loop
    /// (use of a body def before its definition — a cross-iteration or
    /// erroneous flow the trace cannot model).
    fn operand(&mut self, slot: Slot) -> Option<u32> {
        if slot == self.iv {
            return Some(self.iv_reg);
        }
        if let Some(&(_, r)) = self.defs.iter().find(|&&(s, _)| s == slot) {
            return Some(r);
        }
        if self.def_slots.contains(&slot) {
            return None;
        }
        if let Some(&(_, r)) = self.inputs.iter().find(|&&(s, _)| s == slot) {
            return Some(r);
        }
        let r = self.n;
        self.n += 1;
        self.inputs.push((slot, r));
        Some(r)
    }

    fn define(&mut self, slot: Slot) -> u32 {
        let r = self.n;
        self.n += 1;
        self.defs.push((slot, r));
        r
    }
}

/// Interns a buffer operand, keyed by frame slot. Rejects body-defined
/// buffers (cross-iteration flow) and rank-inconsistent subscript lists
/// (the runtime preflight then checks the single recorded rank against the
/// live tensor).
fn buffer_index(
    buffers: &mut Vec<(Slot, u32)>,
    def_slots: &[Slot],
    slot: Slot,
    rank: u32,
) -> Result<u32, FuseDecline> {
    if def_slots.contains(&slot) {
        return Err(FuseDecline::CrossIterationFlow);
    }
    if let Some(i) = buffers.iter().position(|&(s, _)| s == slot) {
        if buffers[i].1 != rank {
            return Err(FuseDecline::Malformed);
        }
        return Ok(i as u32);
    }
    buffers.push((slot, rank));
    Ok((buffers.len() - 1) as u32)
}

/// Walks every decoded op and compiles each fusible `affine.for` body into
/// a [`FusedLoop`], returning a trace table and a decline table, both
/// indexed by the body block's
/// [`BlockId::index`](equeue_ir::BlockId::index). Pure and cheap (linear in
/// the module); runs unconditionally in `Plan::build` so a single compiled
/// module can serve both backends. Blocks that are not an `affine.for` body
/// (or whose loop never enters) are `None` in both tables.
#[allow(clippy::type_complexity)]
pub(crate) fn build_fused(
    module: &Module,
    ops: &[OpInfo],
) -> (Vec<Option<Box<FusedLoop>>>, Vec<Option<FuseDecline>>) {
    let mut fused: Vec<Option<Box<FusedLoop>>> = (0..module.num_blocks()).map(|_| None).collect();
    let mut declines: Vec<Option<FuseDecline>> = (0..module.num_blocks()).map(|_| None).collect();
    for info in ops {
        if let OpCode::For {
            lower,
            upper,
            step,
            body,
            iv,
        } = &info.code
        {
            if lower < upper {
                let bi = body.index();
                if let Some(entry) = fused.get_mut(bi) {
                    if entry.is_none() && declines[bi].is_none() {
                        match try_build(module, ops, *body, *iv, *step, *upper) {
                            Ok(f) => *entry = Some(Box::new(f)),
                            Err(why) => declines[bi] = Some(why),
                        }
                    }
                }
            }
        }
    }
    (fused, declines)
}

/// Attempts to compile one loop body; `Err` carries the precise decline
/// reason ("leave it to the interpreter, because …").
fn try_build(
    module: &Module,
    ops: &[OpInfo],
    body: equeue_ir::BlockId,
    iv: Slot,
    step: i64,
    upper: i64,
) -> Result<FusedLoop, FuseDecline> {
    let block = module.block(body);
    // Shorthands: operand resolution failures are cross-iteration flow;
    // structural surprises (arity, missing op records) are malformed.
    let flow = || FuseDecline::CrossIterationFlow;
    let bad = || FuseDecline::Malformed;

    // Pass 1: collect every slot the body defines, so operand resolution
    // can tell loop-invariant inputs from in-body defs.
    let mut def_slots: Vec<Slot> = Vec::new();
    for &op in &block.ops {
        let info = ops.get(op.index()).ok_or_else(bad)?;
        if matches!(info.code, OpCode::Erased) {
            continue;
        }
        def_slots.extend(&info.results);
    }
    if def_slots.contains(&iv) {
        return Err(flow());
    }

    // Pass 2: decode each op into a trace instruction.
    let mut regs = RegAlloc {
        n: 1,
        iv,
        iv_reg: 0,
        def_slots: &def_slots,
        inputs: Vec::new(),
        defs: Vec::new(),
    };
    let mut buffers: Vec<(Slot, u32)> = Vec::new();
    let mut insts: Vec<FusedInst> = Vec::new();
    for (pos, &op) in block.ops.iter().enumerate() {
        let info = ops.get(op.index()).ok_or_else(bad)?;
        let op_pos = pos as u32;
        match &info.code {
            OpCode::Erased => continue,
            OpCode::AffineLoad { buffer, indices } => {
                if info.results.len() != 1 {
                    return Err(bad());
                }
                let buf = buffer_index(&mut buffers, &def_slots, *buffer, indices.len() as u32)?;
                let idx: Option<Box<[u32]>> = indices.iter().map(|&s| regs.operand(s)).collect();
                let dst = regs.define(info.results[0]);
                insts.push(FusedInst::Load {
                    buf,
                    indices: idx.ok_or_else(flow)?,
                    dst,
                    op_pos,
                });
            }
            OpCode::AffineStore {
                value,
                buffer,
                indices,
            } => {
                if !info.results.is_empty() {
                    return Err(bad());
                }
                let src = regs.operand(*value).ok_or_else(flow)?;
                let buf = buffer_index(&mut buffers, &def_slots, *buffer, indices.len() as u32)?;
                let idx: Option<Box<[u32]>> = indices.iter().map(|&s| regs.operand(s)).collect();
                insts.push(FusedInst::Store {
                    buf,
                    indices: idx.ok_or_else(flow)?,
                    src,
                    op_pos,
                });
            }
            OpCode::Binary {
                kind: Some(op),
                lhs,
                rhs,
                index_typed,
                ..
            } => {
                if info.results.len() != 1 {
                    return Err(bad());
                }
                let lhs = regs.operand(*lhs).ok_or_else(flow)?;
                let rhs = regs.operand(*rhs).ok_or_else(flow)?;
                let dst = regs.define(info.results[0]);
                insts.push(FusedInst::Bin {
                    op: *op,
                    lhs,
                    rhs,
                    dst,
                    index_typed: *index_typed,
                    op_pos,
                });
            }
            OpCode::Cmpi { pred, lhs, rhs } => {
                if info.results.len() != 1 {
                    return Err(bad());
                }
                let pred = CmpPred::from_name(pred)
                    .ok_or_else(|| FuseDecline::UnsupportedOp(format!("arith.cmpi {pred}")))?;
                let lhs = regs.operand(*lhs).ok_or_else(flow)?;
                let rhs = regs.operand(*rhs).ok_or_else(flow)?;
                let dst = regs.define(info.results[0]);
                insts.push(FusedInst::Cmp {
                    pred,
                    lhs,
                    rhs,
                    dst,
                    op_pos,
                });
            }
            OpCode::Select {
                cond,
                on_true,
                on_false,
            } => {
                if info.results.len() != 1 {
                    return Err(bad());
                }
                let cond = regs.operand(*cond).ok_or_else(flow)?;
                let on_true = regs.operand(*on_true).ok_or_else(flow)?;
                let on_false = regs.operand(*on_false).ok_or_else(flow)?;
                let dst = regs.define(info.results[0]);
                insts.push(FusedInst::Sel {
                    cond,
                    on_true,
                    on_false,
                    dst,
                    op_pos,
                });
            }
            OpCode::Constant(SimValue::Int(v)) => {
                if info.results.len() != 1 {
                    return Err(bad());
                }
                let dst = regs.define(info.results[0]);
                insts.push(FusedInst::Const {
                    value: *v,
                    dst,
                    op_pos,
                });
            }
            OpCode::Yield => {
                if !info.results.is_empty() {
                    return Err(bad());
                }
                insts.push(FusedInst::Nop { op_pos });
            }
            OpCode::For { .. } | OpCode::Parallel { .. } => {
                return Err(FuseDecline::MultiLevelNest)
            }
            _ => return Err(FuseDecline::UnsupportedOp(module.op(op).name.clone())),
        }
    }
    if insts.is_empty() {
        return Err(FuseDecline::EmptyBody);
    }
    Ok(FusedLoop {
        insts,
        n_regs: regs.n,
        iv_reg: 0,
        iv_slot: iv,
        step,
        upper,
        inputs: regs.inputs,
        defs: regs.defs.iter().map(|&(s, r)| (r, s)).collect(),
        buffers,
    })
}

// ---------------------------------------------------------------------------
// Trace execution
// ---------------------------------------------------------------------------

/// Per-entry runtime view of one buffer: identity, pre-resolved uniform
/// access cost, and batched traffic counts for zero-latency memories
/// (flushed into [`MemCounters`](crate::MemCounters) at trace exit; timed
/// memories go through [`Memory::access`](crate::Memory::access) per access
/// so port schedules stay exact).
#[derive(Debug, Clone, Copy)]
struct BufRt {
    buf: BufId,
    mem: CompId,
    /// Uniform per-element access latency; `0` enables counter batching.
    cost: u64,
    elem_bytes: u64,
    base_addr: usize,
    dims_start: u32,
    dims_len: u32,
    reads: u64,
    writes: u64,
}

/// Reusable trace-runner scratch, owned by the engine so repeated trace
/// entries (e.g. an inner loop re-entered by every outer iteration)
/// allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct FusedScratch {
    /// Blocks whose trace this run has declined (runtime preflight
    /// mismatch); permanent for the run, so a declined loop pays the
    /// preflight once, not per entry.
    pub(crate) skip: Vec<bool>,
    /// The virtual register bank.
    regs: Vec<i64>,
    /// Per-instruction cycle cost, resolved from the entering processor's
    /// [`HotCycles`](crate::engine) at trace entry.
    costs: Vec<u64>,
    bufs: Vec<BufRt>,
    /// Concatenated buffer shapes (`BufRt.dims_start/dims_len` slices).
    dims: Vec<usize>,
}

impl FusedScratch {
    pub(crate) fn new(n_blocks: usize) -> FusedScratch {
        FusedScratch {
            skip: vec![false; n_blocks],
            ..FusedScratch::default()
        }
    }
}

/// How a trace run ended.
enum Exit {
    /// Trip count exhausted: pop the loop scope.
    Done,
    /// A timed instruction (at this `op_pos`) reached another pending
    /// event: yield to the scheduler mid-iteration.
    Yield(u32),
    /// A limit/cancellation/runtime error, bit-identical to what the
    /// interpreter would raise at the same point.
    Fail(SimError),
}

/// Replicates `Tensor::try_flatten_index` over registers, including the
/// interpreter's negative-subscript clamp and its exact error message.
/// Rank equality is a preflight invariant, so only per-dim bounds can fail.
fn flatten(regs: &[i64], dims: &[usize], indices: &[u32]) -> Result<usize, String> {
    let mut flat = 0usize;
    for (i, &r) in indices.iter().enumerate() {
        let idx = regs[r as usize].max(0) as usize;
        let dim = dims[i];
        if idx >= dim {
            return Err(format!("index {idx} out of range for dim {i} (size {dim})"));
        }
        flat = flat * dim + idx;
    }
    Ok(flat)
}

impl<'m> Engine<'m> {
    /// Runs the fused trace for the loop scope currently on top of
    /// `frame`'s stack. `Ok(None)` means the runtime preflight declined:
    /// the block is marked skipped for the rest of the run and the caller
    /// falls through to the interpreter.
    pub(crate) fn run_fused(
        &mut self,
        p: usize,
        frame: &mut Frame,
        f: &FusedLoop,
        block_idx: usize,
    ) -> Result<Option<Step>, SimError> {
        // Contended entry: another event is already due at or before this
        // processor's clock, so the very first timed instruction would
        // yield right back to the scheduler. The interpreter's single-op
        // path is cheaper than trace preflight there, and
        // contention-dominated programs (e.g. the fig12 sweep points) hit
        // this on almost every entry. Declining here does NOT mark the
        // block skipped — the next uncontended entry runs the trace.
        {
            let clock = self.procs[p].clock;
            if self
                .heap
                .peek()
                .is_some_and(|&Reverse((t, _, _, _))| t <= clock)
            {
                return Ok(None);
            }
        }
        // The scratch is moved out for the duration of the run so the
        // borrow checker sees `self` (machine, heap, counters) and the
        // scratch as disjoint. It is restored on every path.
        let mut s = std::mem::take(&mut self.fused);
        let out = self.fused_exec(p, frame, f, &mut s);
        self.fused = s;
        if matches!(out, Ok(None)) {
            if let Some(skip) = self.fused.skip.get_mut(block_idx) {
                *skip = true;
            }
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn fused_exec(
        &mut self,
        p: usize,
        frame: &mut Frame,
        f: &FusedLoop,
        s: &mut FusedScratch,
    ) -> Result<Option<Step>, SimError> {
        // ---- preflight: validate the live machine state against the
        // trace's compile-time assumptions; any mismatch declines. ----
        let entry_idx;
        let mut iv;
        {
            let Some(scope) = frame.stack.last() else {
                return Ok(None);
            };
            let Some(state) = &scope.looping else {
                return Ok(None);
            };
            if state.ivs.len() != 1
                || state.ivs[0] != f.iv_slot
                || state.steps[0] != f.step
                || state.uppers[0] != f.upper
            {
                return Ok(None);
            }
            entry_idx = scope.idx;
            iv = state.current[0];
        }

        s.bufs.clear();
        s.dims.clear();
        for &(slot, rank) in &f.buffers {
            let Ok(SimValue::Buffer(bid)) = self.lookup(frame, slot) else {
                return Ok(None);
            };
            let b = self.machine.buffer(bid);
            if b.data.shape.len() != rank as usize || !matches!(b.data.data, TensorData::Int(_)) {
                return Ok(None);
            }
            let Some(cost) = self
                .machine
                .memory(b.mem)
                .and_then(|m| m.behavior.uniform_scalar_cycles())
            else {
                return Ok(None);
            };
            let dims_start = s.dims.len() as u32;
            s.dims.extend_from_slice(&b.data.shape);
            s.bufs.push(BufRt {
                buf: bid,
                mem: b.mem,
                cost,
                elem_bytes: b.elem_bytes as u64,
                base_addr: b.base_addr,
                dims_start,
                dims_len: b.data.shape.len() as u32,
                reads: 0,
                writes: 0,
            });
        }

        s.regs.clear();
        s.regs.resize(f.n_regs as usize, 0);
        for &(slot, r) in &f.inputs {
            let Ok(SimValue::Int(v)) = self.lookup(frame, slot) else {
                return Ok(None);
            };
            s.regs[r as usize] = v;
        }
        // Defs already computed this iteration (resuming mid-iteration
        // after a contended yield) are re-loaded from the environment; the
        // zero default is never read before being overwritten, because
        // trace formation rejects use-before-def.
        for &(r, slot) in &f.defs {
            if let Some(Some(SimValue::Int(v))) = frame.env.get(slot as usize) {
                s.regs[r as usize] = *v;
            }
        }
        s.regs[f.iv_reg as usize] = iv;

        s.costs.clear();
        s.costs.reserve(f.insts.len());
        {
            let hot = &self.procs[p].hot;
            for inst in &f.insts {
                s.costs.push(match inst {
                    FusedInst::Load { .. } => hot.load,
                    FusedInst::Store { .. } => hot.store,
                    FusedInst::Bin {
                        op, index_typed, ..
                    } => {
                        if *index_typed {
                            0
                        } else {
                            hot.arith[*op as usize]
                        }
                    }
                    FusedInst::Cmp { .. } => hot.cmpi,
                    FusedInst::Sel { .. } => hot.select,
                    FusedInst::Const { .. } | FusedInst::Nop { .. } => 0,
                });
            }
        }

        // ---- trace state: engine counters as locals. The heap is
        // untouched inside a trace (no pushes, no signal resolutions), so
        // the earliest pending event is a constant contention barrier. An
        // armed snapshot cut caps the barrier too: the trace then exits via
        // `Exit::Yield` at the first timed op at or past the cut — this is
        // where a snapshot requested mid-trace lands. ----
        let mut barrier = self
            .heap
            .peek()
            .map_or(u64::MAX, |&Reverse((t, _, _, _))| t);
        if let Some(cut) = self.snapshot_at {
            barrier = barrier.min(cut);
        }
        let max_events = self.options.limits.max_events;
        let max_cycles = self.options.limits.max_cycles;
        let entry_clock = self.procs[p].clock;
        let mut clock = entry_clock;
        let mut wakes = self.wakes;
        let mut ops = self.ops_interpreted;
        let mut idle = self.idle_steps;
        let mut last_wake: Option<u64> = None;
        // Mirrors the interpreter's `ctx_born` bookkeeping: each inline
        // wake's virtual entry was "scheduled" at the pre-wake `now`.
        let entry_now = self.now;
        let mut ctx_born = self.ctx_born;
        let mut pos = f
            .insts
            .partition_point(|i| (i.op_pos() as usize) < entry_idx);

        let exit = 'run: loop {
            while pos < f.insts.len() {
                let inst = &f.insts[pos];
                let cost = s.costs[pos];
                ops += 1;
                match inst {
                    FusedInst::Load {
                        buf, indices, dst, ..
                    } => {
                        let b = s.bufs[*buf as usize];
                        let dims =
                            &s.dims[b.dims_start as usize..(b.dims_start + b.dims_len) as usize];
                        let flat = match flatten(&s.regs, dims, indices) {
                            Ok(flat) => flat,
                            Err(msg) => break 'run Exit::Fail(SimError::Runtime(msg)),
                        };
                        if b.cost > 0 {
                            // Timed memory: exact per-access port
                            // reservation and traffic accounting.
                            match self.machine.memory_mut(b.mem) {
                                Some(m) => {
                                    let _ = m.access(
                                        AccessKind::Read,
                                        b.base_addr + flat,
                                        1,
                                        b.elem_bytes,
                                        clock,
                                    );
                                }
                                None => {
                                    break 'run Exit::Fail(SimError::Runtime(
                                        "internal: buffer not backed by a memory".into(),
                                    ))
                                }
                            }
                        } else {
                            s.bufs[*buf as usize].reads += 1;
                        }
                        match self.machine.buffer(b.buf).data.data.int_at(flat) {
                            Some(v) => s.regs[*dst as usize] = v,
                            None => {
                                break 'run Exit::Fail(SimError::Runtime(
                                    "internal: fused load outside buffer storage".into(),
                                ))
                            }
                        }
                    }
                    FusedInst::Store {
                        buf, indices, src, ..
                    } => {
                        let b = s.bufs[*buf as usize];
                        let dims =
                            &s.dims[b.dims_start as usize..(b.dims_start + b.dims_len) as usize];
                        let flat = match flatten(&s.regs, dims, indices) {
                            Ok(flat) => flat,
                            Err(msg) => break 'run Exit::Fail(SimError::Runtime(msg)),
                        };
                        if b.cost > 0 {
                            match self.machine.memory_mut(b.mem) {
                                Some(m) => {
                                    let _ = m.access(
                                        AccessKind::Write,
                                        b.base_addr + flat,
                                        1,
                                        b.elem_bytes,
                                        clock,
                                    );
                                }
                                None => {
                                    break 'run Exit::Fail(SimError::Runtime(
                                        "internal: buffer not backed by a memory".into(),
                                    ))
                                }
                            }
                        } else {
                            s.bufs[*buf as usize].writes += 1;
                        }
                        let v = s.regs[*src as usize];
                        if !self.machine.buffer_mut(b.buf).data.data.set_int_at(flat, v) {
                            break 'run Exit::Fail(SimError::Runtime(format!(
                                "write index {flat} out of range"
                            )));
                        }
                    }
                    FusedInst::Bin {
                        op, lhs, rhs, dst, ..
                    } => match op.int(s.regs[*lhs as usize], s.regs[*rhs as usize]) {
                        Ok(v) => s.regs[*dst as usize] = v,
                        Err(msg) => break 'run Exit::Fail(SimError::Runtime(msg)),
                    },
                    FusedInst::Cmp {
                        pred,
                        lhs,
                        rhs,
                        dst,
                        ..
                    } => {
                        s.regs[*dst as usize] =
                            i64::from(pred.eval(s.regs[*lhs as usize], s.regs[*rhs as usize]));
                    }
                    FusedInst::Sel {
                        cond,
                        on_true,
                        on_false,
                        dst,
                        ..
                    } => {
                        s.regs[*dst as usize] = if s.regs[*cond as usize] != 0 {
                            s.regs[*on_true as usize]
                        } else {
                            s.regs[*on_false as usize]
                        };
                    }
                    FusedInst::Const { value, dst, .. } => s.regs[*dst as usize] = *value,
                    FusedInst::Nop { .. } => {}
                }
                // Timing: mirrors `advance` + the inline-wake path of
                // `step_frame`. A timed op whose finish time reaches the
                // barrier yields (contended — no wake counted); otherwise
                // the wake is taken inline with the interpreter's exact
                // budget-check order.
                if cost > 0 {
                    clock += cost;
                    if barrier <= clock {
                        break 'run Exit::Yield(inst.op_pos());
                    }
                    ctx_born = last_wake.unwrap_or(entry_now);
                    last_wake = Some(clock);
                    wakes += 1;
                    if wakes > max_events {
                        break 'run Exit::Fail(self.fused_limit(
                            LimitKind::Events,
                            max_events,
                            clock,
                            wakes,
                            ops,
                        ));
                    }
                    if clock > max_cycles {
                        break 'run Exit::Fail(self.fused_limit(
                            LimitKind::Cycles,
                            max_cycles,
                            clock,
                            wakes,
                            ops,
                        ));
                    }
                    if wakes & (WAKE_EPOCH - 1) == 1 {
                        if let Err(e) = self.fused_poll(clock, wakes, ops) {
                            break 'run Exit::Fail(e);
                        }
                    }
                } else if ops & (OP_EPOCH - 1) == 0 {
                    if let Err(e) = self.fused_poll(clock, wakes, ops) {
                        break 'run Exit::Fail(e);
                    }
                }
                pos += 1;
            }

            // ---- iteration boundary: the interpreter's end-of-block
            // bookkeeping (loop advance + bounded idle-step spin). ----
            let next = iv.saturating_add(f.step);
            let continuing = next < f.upper;
            if continuing {
                iv = next;
                s.regs[f.iv_reg as usize] = next;
            }
            idle += 1;
            if idle & (OP_EPOCH - 1) == 0 {
                if idle > max_events {
                    break Exit::Fail(self.fused_limit(
                        LimitKind::Events,
                        max_events,
                        clock,
                        wakes,
                        ops,
                    ));
                }
                if let Err(e) = self.fused_poll(clock, wakes, ops) {
                    break Exit::Fail(e);
                }
            }
            if !continuing {
                break Exit::Done;
            }
            pos = 0;
        };

        // ---- trace exit: sync counters, flush batched traffic, write
        // live register state back into the frame. ----
        self.wakes = wakes;
        self.ops_interpreted = ops;
        self.idle_steps = idle;
        self.procs[p].clock = clock;
        if clock > entry_clock {
            self.bump_horizon(clock);
        }
        if let Some(t) = last_wake {
            self.now = t;
            self.ctx_born = ctx_born;
        }
        for b in &mut s.bufs {
            if b.reads == 0 && b.writes == 0 {
                continue;
            }
            if let Some(m) = self.machine.memory_mut(b.mem) {
                m.counters.reads += b.reads;
                m.counters.bytes_read += b.reads * b.elem_bytes;
                m.counters.writes += b.writes;
                m.counters.bytes_written += b.writes * b.elem_bytes;
            }
        }

        match exit {
            Exit::Fail(e) => Err(e),
            Exit::Done => {
                for &(r, slot) in &f.defs {
                    frame.env[slot as usize] = Some(SimValue::Int(s.regs[r as usize]));
                }
                frame.env[f.iv_slot as usize] = Some(SimValue::Int(iv));
                frame.stack.pop();
                Ok(Some(Step::Continue))
            }
            Exit::Yield(op_pos) => {
                for &(r, slot) in &f.defs {
                    frame.env[slot as usize] = Some(SimValue::Int(s.regs[r as usize]));
                }
                frame.env[f.iv_slot as usize] = Some(SimValue::Int(iv));
                if let Some(scope) = frame.stack.last_mut() {
                    scope.idx = op_pos as usize + 1;
                    if let Some(state) = &mut scope.looping {
                        state.current[0] = iv;
                    }
                }
                Ok(Some(Step::Yield))
            }
        }
    }

    /// `Progress` from trace-local counters (the engine's own counters are
    /// synced only at trace exit).
    fn fused_progress(&self, clock: u64, wakes: u64, ops: u64) -> Progress {
        Progress {
            cycles: self.horizon.max(clock),
            events: wakes,
            ops,
        }
    }

    fn fused_limit(
        &self,
        kind: LimitKind,
        limit: u64,
        clock: u64,
        wakes: u64,
        ops: u64,
    ) -> SimError {
        SimError::Limit(LimitExceeded {
            kind,
            limit,
            progress: self.fused_progress(clock, wakes, ops),
        })
    }

    /// The epoch-cadence cancellation / wall-deadline poll, identical to
    /// the interpreter's `check_epoch` but fed trace-local counters.
    #[cold]
    fn fused_poll(&self, clock: u64, wakes: u64, ops: u64) -> Result<(), SimError> {
        if let Some(c) = &self.options.cancel {
            if c.is_cancelled() {
                return Err(SimError::Cancelled(self.fused_progress(clock, wakes, ops)));
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let ms = self
                    .options
                    .limits
                    .wall_deadline
                    .map_or(0, |w| w.as_millis() as u64);
                return Err(self.fused_limit(LimitKind::WallClock, ms, clock, wakes, ops));
            }
        }
        Ok(())
    }
}
