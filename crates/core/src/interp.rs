//! Pure-value interpretation helpers: arithmetic semantics (including
//! element-wise tensor broadcasting) and functional implementations of the
//! Linalg named ops.
//!
//! The engine (in [`crate::engine`]) owns time; this module owns data. Keeping
//! data semantics separate lets tests validate functional behaviour (e.g. a
//! convolution's numbers) without running the clock.

use crate::value::{SimValue, Tensor, TensorData};

/// Applies a binary `arith` op to two runtime values.
///
/// Tensors broadcast element-wise: `tensor ⊗ tensor` requires equal element
/// counts, `tensor ⊗ scalar` (either order) broadcasts the scalar. This is
/// what lets a systolic PE compute `ofmap = ifmap * weight + ofmap_old`
/// over register vectors.
///
/// # Errors
///
/// Returns a message for unsupported op names, operand kinds, mismatched
/// tensor lengths, or division by zero.
pub fn apply_binary(name: &str, lhs: &SimValue, rhs: &SimValue) -> Result<SimValue, String> {
    match (lhs, rhs) {
        (SimValue::Tensor(a), SimValue::Tensor(b)) => {
            if a.len() != b.len() {
                return Err(format!(
                    "'{name}' tensor length mismatch: {} vs {}",
                    a.len(),
                    b.len()
                ));
            }
            zip_tensors(name, a, b)
        }
        (SimValue::Tensor(a), s) if scalar(s) => map_tensor(name, a, s, false),
        (s, SimValue::Tensor(b)) if scalar(s) => map_tensor(name, b, s, true),
        (SimValue::Int(a), SimValue::Int(b)) => int_op(name, *a, *b),
        (SimValue::Float(a), SimValue::Float(b)) => float_op(name, *a, *b),
        (SimValue::Int(a), SimValue::Float(b)) => float_op(name, *a as f64, *b),
        (SimValue::Float(a), SimValue::Int(b)) => float_op(name, *a, *b as f64),
        _ => Err(format!("'{name}' cannot combine {lhs} and {rhs}")),
    }
}

fn scalar(v: &SimValue) -> bool {
    matches!(v, SimValue::Int(_) | SimValue::Float(_))
}

/// A binary `arith` operator. The single source of truth for scalar
/// semantics: both [`apply_binary`] (via `int_op`/`float_op`) and the
/// engine's pre-decoded fast path dispatch through it, so the two can
/// never drift. Int/float behaviours mirror each other, including the
/// historical `addi`-accepted-on-floats promotions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Addi,
    Addf,
    Subi,
    Muli,
    Mulf,
    Divi,
    Remi,
}

impl BinOp {
    pub(crate) const COUNT: usize = 7;
    pub(crate) const ALL: [BinOp; BinOp::COUNT] = [
        BinOp::Addi,
        BinOp::Addf,
        BinOp::Subi,
        BinOp::Muli,
        BinOp::Mulf,
        BinOp::Divi,
        BinOp::Remi,
    ];

    pub(crate) fn from_name(name: &str) -> Option<BinOp> {
        Some(match name {
            "arith.addi" => BinOp::Addi,
            "arith.addf" => BinOp::Addf,
            "arith.subi" => BinOp::Subi,
            "arith.muli" => BinOp::Muli,
            "arith.mulf" => BinOp::Mulf,
            "arith.divi" => BinOp::Divi,
            "arith.remi" => BinOp::Remi,
            _ => None?,
        })
    }

    /// The op name, e.g. for per-processor profile lookups.
    pub(crate) fn name(self) -> &'static str {
        match self {
            BinOp::Addi => "arith.addi",
            BinOp::Addf => "arith.addf",
            BinOp::Subi => "arith.subi",
            BinOp::Muli => "arith.muli",
            BinOp::Mulf => "arith.mulf",
            BinOp::Divi => "arith.divi",
            BinOp::Remi => "arith.remi",
        }
    }

    pub(crate) fn int(self, a: i64, b: i64) -> Result<i64, String> {
        Ok(match self {
            BinOp::Addi | BinOp::Addf => a.wrapping_add(b),
            BinOp::Subi => a.wrapping_sub(b),
            BinOp::Muli | BinOp::Mulf => a.wrapping_mul(b),
            BinOp::Divi => {
                if b == 0 {
                    return Err("integer division by zero".into());
                }
                a / b
            }
            BinOp::Remi => {
                if b == 0 {
                    return Err("integer remainder by zero".into());
                }
                a % b
            }
        })
    }

    pub(crate) fn float(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Addi | BinOp::Addf => a + b,
            BinOp::Subi => a - b,
            BinOp::Muli | BinOp::Mulf => a * b,
            BinOp::Divi => a / b,
            BinOp::Remi => a % b,
        }
    }
}

fn bin_op(name: &str) -> Result<BinOp, String> {
    BinOp::from_name(name).ok_or_else(|| format!("unknown binary op '{name}'"))
}

fn int_op(name: &str, a: i64, b: i64) -> Result<SimValue, String> {
    Ok(SimValue::Int(bin_op(name)?.int(a, b)?))
}

fn float_op(name: &str, a: f64, b: f64) -> Result<SimValue, String> {
    Ok(SimValue::Float(bin_op(name)?.float(a, b)))
}

fn zip_tensors(name: &str, a: &Tensor, b: &Tensor) -> Result<SimValue, String> {
    let data = match (&a.data, &b.data) {
        (TensorData::Int(x), TensorData::Int(y)) => {
            let mut out = Vec::with_capacity(x.len());
            for (xa, yb) in x.iter().zip(y.iter()) {
                match int_op(name, *xa, *yb)? {
                    SimValue::Int(v) => out.push(v),
                    _ => unreachable!(),
                }
            }
            TensorData::from_ints(out)
        }
        (TensorData::Float(x), TensorData::Float(y)) => {
            let mut out = Vec::with_capacity(x.len());
            for (xa, yb) in x.iter().zip(y.iter()) {
                match float_op(name, *xa, *yb)? {
                    SimValue::Float(v) => out.push(v),
                    _ => unreachable!(),
                }
            }
            TensorData::from_floats(out)
        }
        _ => return Err(format!("'{name}' mixes int and float tensors")),
    };
    Ok(SimValue::Tensor(Tensor {
        shape: a.shape.clone(),
        data,
    }))
}

fn map_tensor(
    name: &str,
    t: &Tensor,
    s: &SimValue,
    scalar_first: bool,
) -> Result<SimValue, String> {
    let data = match &t.data {
        TensorData::Int(x) => {
            let sv = s
                .as_int()
                .ok_or_else(|| format!("'{name}' mixes int tensor and float"))?;
            let mut out = Vec::with_capacity(x.len());
            for &xa in x.iter() {
                let (a, b) = if scalar_first { (sv, xa) } else { (xa, sv) };
                match int_op(name, a, b)? {
                    SimValue::Int(v) => out.push(v),
                    _ => unreachable!(),
                }
            }
            TensorData::from_ints(out)
        }
        TensorData::Float(x) => {
            let sv = s.as_float().ok_or_else(|| format!("'{name}' bad scalar"))?;
            let mut out = Vec::with_capacity(x.len());
            for &xa in x.iter() {
                let (a, b) = if scalar_first { (sv, xa) } else { (xa, sv) };
                match float_op(name, a, b)? {
                    SimValue::Float(v) => out.push(v),
                    _ => unreachable!(),
                }
            }
            TensorData::from_floats(out)
        }
    };
    Ok(SimValue::Tensor(Tensor {
        shape: t.shape.clone(),
        data,
    }))
}

/// A pre-decoded `arith.cmpi` predicate. Single source of truth for the
/// comparison semantics: [`apply_cmpi`] and the engine's fused loop traces
/// both dispatch through [`CmpPred::eval`], so the two can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    pub(crate) fn from_name(pred: &str) -> Option<CmpPred> {
        Some(match pred {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => None?,
        })
    }

    pub(crate) fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }
    }
}

/// Applies `arith.cmpi` with the given predicate string.
///
/// # Errors
///
/// Returns a message for unknown predicates or non-integer operands.
pub fn apply_cmpi(pred: &str, lhs: &SimValue, rhs: &SimValue) -> Result<SimValue, String> {
    let a = lhs.as_int().ok_or("cmpi needs integer operands")?;
    let b = rhs.as_int().ok_or("cmpi needs integer operands")?;
    let p = CmpPred::from_name(pred).ok_or_else(|| format!("unknown cmpi predicate '{pred}'"))?;
    Ok(SimValue::Int(p.eval(a, b) as i64))
}

/// Functional 2-D convolution over integer tensors (reference semantics for
/// `linalg.conv2d`).
///
/// Layouts: ifmap `[C][H][W]`, weights `[N][C][Fh][Fw]`, ofmap
/// `[N][Eh][Ew]` — all flattened row-major. Accumulation wraps on overflow
/// (two's-complement), matching the engine's `arith.muli`/`arith.addi`
/// semantics on adversarial inputs.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_int(
    ifmap: &[i64],
    weights: &[i64],
    ofmap: &mut [i64],
    c: usize,
    h: usize,
    w: usize,
    n: usize,
    fh: usize,
    fw: usize,
) {
    // A filter larger than the input yields an empty ofmap rather than an
    // arithmetic panic (the engine validates shapes before calling in).
    let eh = h.saturating_add(1).saturating_sub(fh);
    let ew = w.saturating_add(1).saturating_sub(fw);
    for on in 0..n {
        for oy in 0..eh {
            for ox in 0..ew {
                let mut acc = 0i64;
                for ic in 0..c {
                    for ky in 0..fh {
                        for kx in 0..fw {
                            let iv = ifmap[ic * h * w + (oy + ky) * w + (ox + kx)];
                            let wv = weights[on * c * fh * fw + ic * fh * fw + ky * fw + kx];
                            acc = acc.wrapping_add(iv.wrapping_mul(wv));
                        }
                    }
                }
                ofmap[on * eh * ew + oy * ew + ox] = acc;
            }
        }
    }
}

/// Functional integer matmul: `C = A × B` with `A: MxK`, `B: KxN`.
/// Accumulation wraps on overflow, matching `arith` semantics.
pub fn matmul_int(a: &[i64], b: &[i64], c: &mut [i64], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc = acc.wrapping_add(a[i * k + p].wrapping_mul(b[p * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_scalar_ops() {
        assert_eq!(
            apply_binary("arith.addi", &SimValue::Int(2), &SimValue::Int(3)).unwrap(),
            SimValue::Int(5)
        );
        assert_eq!(
            apply_binary("arith.subi", &SimValue::Int(2), &SimValue::Int(3)).unwrap(),
            SimValue::Int(-1)
        );
        assert_eq!(
            apply_binary("arith.muli", &SimValue::Int(4), &SimValue::Int(3)).unwrap(),
            SimValue::Int(12)
        );
        assert_eq!(
            apply_binary("arith.divi", &SimValue::Int(7), &SimValue::Int(2)).unwrap(),
            SimValue::Int(3)
        );
        assert_eq!(
            apply_binary("arith.remi", &SimValue::Int(7), &SimValue::Int(2)).unwrap(),
            SimValue::Int(1)
        );
        assert!(apply_binary("arith.divi", &SimValue::Int(1), &SimValue::Int(0)).is_err());
        assert!(apply_binary("arith.bogus", &SimValue::Int(1), &SimValue::Int(1)).is_err());
    }

    #[test]
    fn float_and_mixed() {
        assert_eq!(
            apply_binary("arith.addf", &SimValue::Float(1.5), &SimValue::Float(2.0)).unwrap(),
            SimValue::Float(3.5)
        );
        assert_eq!(
            apply_binary("arith.mulf", &SimValue::Int(2), &SimValue::Float(2.5)).unwrap(),
            SimValue::Float(5.0)
        );
    }

    #[test]
    fn tensor_tensor() {
        let a = SimValue::Tensor(Tensor::from_int(vec![3], vec![1, 2, 3]));
        let b = SimValue::Tensor(Tensor::from_int(vec![3], vec![10, 20, 30]));
        let r = apply_binary("arith.addi", &a, &b).unwrap();
        assert_eq!(
            r,
            SimValue::Tensor(Tensor::from_int(vec![3], vec![11, 22, 33]))
        );
        let short = SimValue::Tensor(Tensor::from_int(vec![2], vec![0, 0]));
        assert!(apply_binary("arith.addi", &a, &short).is_err());
    }

    #[test]
    fn tensor_scalar_broadcast_order_matters() {
        let t = SimValue::Tensor(Tensor::from_int(vec![2], vec![10, 20]));
        let r = apply_binary("arith.subi", &t, &SimValue::Int(1)).unwrap();
        assert_eq!(r, SimValue::Tensor(Tensor::from_int(vec![2], vec![9, 19])));
        let r = apply_binary("arith.subi", &SimValue::Int(1), &t).unwrap();
        assert_eq!(
            r,
            SimValue::Tensor(Tensor::from_int(vec![2], vec![-9, -19]))
        );
    }

    #[test]
    fn cmpi_predicates() {
        let two = SimValue::Int(2);
        let three = SimValue::Int(3);
        assert_eq!(apply_cmpi("lt", &two, &three).unwrap(), SimValue::Int(1));
        assert_eq!(apply_cmpi("ge", &two, &three).unwrap(), SimValue::Int(0));
        assert_eq!(apply_cmpi("eq", &two, &two).unwrap(), SimValue::Int(1));
        assert!(apply_cmpi("wat", &two, &two).is_err());
        assert!(apply_cmpi("eq", &SimValue::Unit, &two).is_err());
    }

    #[test]
    fn conv2d_reference() {
        // 1 channel, 3x3 input, single 2x2 all-ones filter: each output is
        // the sum of a 2x2 window.
        let ifmap = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        let weights = vec![1, 1, 1, 1];
        let mut ofmap = vec![0; 4];
        conv2d_int(&ifmap, &weights, &mut ofmap, 1, 3, 3, 1, 2, 2);
        assert_eq!(
            ofmap,
            vec![1 + 2 + 4 + 5, 2 + 3 + 5 + 6, 4 + 5 + 7 + 8, 5 + 6 + 8 + 9]
        );
    }

    #[test]
    fn conv2d_channels_accumulate() {
        // 2 channels of all-ones 2x2 inputs, 1x1 filter weighting channels
        // by 3 and 5: every output is 3+5.
        let ifmap = vec![1; 8];
        let weights = vec![3, 5];
        let mut ofmap = vec![0; 4];
        conv2d_int(&ifmap, &weights, &mut ofmap, 2, 2, 2, 1, 1, 1);
        assert_eq!(ofmap, vec![8; 4]);
    }

    #[test]
    fn matmul_reference() {
        let a = vec![1, 2, 3, 4]; // 2x2
        let b = vec![5, 6, 7, 8]; // 2x2
        let mut c = vec![0; 4];
        matmul_int(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }
}
