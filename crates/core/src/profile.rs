//! The profiling summary produced by a simulation (§IV-B).
//!
//! Reported per run: wall-clock execution time, simulated runtime in
//! cycles, per-connection read/write bandwidth (average, maximum, and the
//! *max-bandwidth portion* — the fraction of the simulated runtime a
//! channel spent at its peak), and total bytes moved per memory.

use crate::machine::{AccessKind, Machine};
use crate::trace::Trace;
use crate::value::Tensor;
use std::time::Duration;

/// Bandwidth statistics for one direction of one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BandwidthStats {
    /// Total bytes moved.
    pub bytes: u64,
    /// Average bandwidth over the whole run, bytes/cycle.
    pub avg_bw: f64,
    /// Maximum observed bandwidth of any transfer, bytes/cycle.
    pub max_bw: f64,
    /// Fraction of the total runtime spent at `max_bw`.
    pub max_bw_portion: f64,
}

/// Per-connection summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnReport {
    /// Connection display name.
    pub name: String,
    /// Read-direction stats.
    pub read: BandwidthStats,
    /// Write-direction stats.
    pub write: BandwidthStats,
}

/// Per-memory summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemReport {
    /// Memory display name.
    pub name: String,
    /// Memory kind string.
    pub kind: String,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Average read bandwidth over the run, bytes/cycle.
    pub avg_read_bw: f64,
    /// Average write bandwidth over the run, bytes/cycle.
    pub avg_write_bw: f64,
    /// Access energy spent in this memory, picojoules.
    pub energy_pj: f64,
}

/// The full result of one simulation.
#[derive(Debug, Default)]
pub struct SimReport {
    /// Simulated runtime in cycles.
    pub cycles: u64,
    /// Wall-clock time the simulation took.
    pub execution_time: Duration,
    /// Number of engine events processed (scheduler wakes).
    pub events_processed: u64,
    /// Number of events spawned onto processor queues (launches and
    /// memcpys issued). Deterministic and backend-independent; the static
    /// resource-estimation pass upper-bounds it.
    pub events_spawned: u64,
    /// Number of operations interpreted.
    pub ops_interpreted: u64,
    /// High-water mark of simultaneously-live tensor storage, bytes.
    /// Backend-independent; the static resource-estimation pass
    /// upper-bounds it.
    pub peak_live_tensor_bytes: u64,
    /// Successful fused-trace entries. `0` under [`crate::Backend::Interp`]
    /// (and whenever every loop declines); the runtime ground truth for the
    /// analyzer's fusibility report.
    pub fused_trace_entries: u64,
    /// Shard offloads started by the group-sharded parallel engine. `0`
    /// for sequential runs ([`crate::SimOptions::threads`] = 1). Unlike
    /// every other counter this is *observability, not simulation state*:
    /// the apply/abort split — and with it this count — may vary with
    /// wall-clock timing, while the simulated results stay bit-identical.
    pub shard_offloads: u64,
    /// Per-connection bandwidth summaries.
    pub connections: Vec<ConnReport>,
    /// Per-memory traffic summaries.
    pub memories: Vec<MemReport>,
    /// Final contents of every live buffer, in allocation order, for
    /// functional verification (the engine is an interpreter with a clock).
    pub buffers: Vec<BufferDump>,
    /// The operation-level trace (enabled by default).
    pub trace: Trace,
}

/// Final state of one buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDump {
    /// Owning memory's display name.
    pub mem: String,
    /// Allocation index within the machine.
    pub index: usize,
    /// The data.
    pub data: Tensor,
}

impl SimReport {
    /// Builds connection/memory summaries from the machine state.
    pub(crate) fn collect(&mut self, machine: &Machine) {
        let cycles = self.cycles.max(1);
        for conn in &machine.connections {
            let mut report = ConnReport {
                name: conn.name.clone(),
                ..Default::default()
            };
            for dir in [AccessKind::Read, AccessKind::Write] {
                let mut bytes = 0u64;
                let mut max_bw = 0f64;
                for t in conn.transfers.iter().filter(|t| t.kind == dir) {
                    bytes += t.bytes;
                    let dur = t.end.saturating_sub(t.start);
                    let bw = if dur == 0 {
                        // Instant transfer on an unlimited connection: peak
                        // equals the transfer size (moved within one cycle).
                        t.bytes as f64
                    } else {
                        t.bytes as f64 / dur as f64
                    };
                    if bw > max_bw {
                        max_bw = bw;
                    }
                }
                // Portion of the runtime spent at (approximately) max bw.
                let eps = 1e-9;
                let mut at_max = 0u64;
                for t in conn.transfers.iter().filter(|t| t.kind == dir) {
                    let dur = t.end.saturating_sub(t.start);
                    let bw = if dur == 0 {
                        t.bytes as f64
                    } else {
                        t.bytes as f64 / dur as f64
                    };
                    if (bw - max_bw).abs() < eps {
                        at_max += dur.max(1);
                    }
                }
                let stats = BandwidthStats {
                    bytes,
                    avg_bw: bytes as f64 / cycles as f64,
                    max_bw,
                    max_bw_portion: (at_max as f64 / cycles as f64).min(1.0),
                };
                match dir {
                    AccessKind::Read => report.read = stats,
                    AccessKind::Write => report.write = stats,
                }
            }
            self.connections.push(report);
        }
        for (index, buf) in machine.buffers.iter().enumerate() {
            if buf.live {
                self.buffers.push(BufferDump {
                    mem: machine.name(buf.mem).to_string(),
                    index,
                    data: buf.data.clone(),
                });
            }
        }
        for comp in &machine.components {
            if let crate::machine::ComponentKind::Memory(mem) = &comp.kind {
                self.memories.push(MemReport {
                    name: comp.name.clone(),
                    kind: mem.kind.clone(),
                    bytes_read: mem.counters.bytes_read,
                    bytes_written: mem.counters.bytes_written,
                    reads: mem.counters.reads,
                    writes: mem.counters.writes,
                    avg_read_bw: mem.counters.bytes_read as f64 / cycles as f64,
                    avg_write_bw: mem.counters.bytes_written as f64 / cycles as f64,
                    energy_pj: (mem.counters.reads + mem.counters.writes) as f64
                        * mem.energy_per_access_pj,
                });
            }
        }
    }

    /// The summary for the memory whose name contains `needle`, if any.
    pub fn memory_named(&self, needle: &str) -> Option<&MemReport> {
        self.memories.iter().find(|m| m.name.contains(needle))
    }

    /// Sum of average read bandwidth across memories of `kind`.
    pub fn read_bw_of_kind(&self, kind: &str) -> f64 {
        // `+ 0.0` normalises an IEEE negative zero out of the sum.
        self.memories
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.avg_read_bw)
            .sum::<f64>()
            + 0.0
    }

    /// Sum of average write bandwidth across memories of `kind`.
    pub fn write_bw_of_kind(&self, kind: &str) -> f64 {
        self.memories
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.avg_write_bw)
            .sum::<f64>()
            + 0.0
    }

    /// Total memory access energy across the machine, picojoules.
    pub fn total_memory_energy_pj(&self) -> f64 {
        self.memories.iter().map(|m| m.energy_pj).sum::<f64>() + 0.0
    }

    /// A human-readable multi-line summary (the paper's "profiling
    /// summary" output).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "simulated runtime : {} cycles", self.cycles);
        let _ = writeln!(s, "execution time    : {:?}", self.execution_time);
        let _ = writeln!(
            s,
            "engine events     : {} ({} ops interpreted)",
            self.events_processed, self.ops_interpreted
        );
        for c in &self.connections {
            let _ = writeln!(
                s,
                "connection {:12} read  {:>10} B  avg {:>8.3} B/cyc  max {:>8.3}  portion {:>5.3}",
                c.name, c.read.bytes, c.read.avg_bw, c.read.max_bw, c.read.max_bw_portion
            );
            let _ = writeln!(
                s,
                "connection {:12} write {:>10} B  avg {:>8.3} B/cyc  max {:>8.3}  portion {:>5.3}",
                c.name, c.write.bytes, c.write.avg_bw, c.write.max_bw, c.write.max_bw_portion
            );
        }
        for m in &self.memories {
            let _ = writeln!(
                s,
                "memory {:16} ({:8}) read {:>10} B ({:>8} ops, {:>8.3} B/cyc)  write {:>10} B ({:>8} ops, {:>8.3} B/cyc)  energy {:>10.1} pJ",
                m.name, m.kind, m.bytes_read, m.reads, m.avg_read_bw, m.bytes_written, m.writes, m.avg_write_bw, m.energy_pj
            );
        }
        let _ = writeln!(
            s,
            "total memory energy: {:.1} pJ",
            self.total_memory_energy_pj()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use equeue_dialect::ConnKind;

    #[test]
    fn collect_connection_stats() {
        let mut machine = Machine::new();
        let c = machine.add_connection(ConnKind::Streaming, 4);
        machine.connection_mut(c).reserve(AccessKind::Read, 0, 16); // 4 cycles @ 4 B/c
        machine.connection_mut(c).reserve(AccessKind::Read, 10, 8); // 2 cycles @ 4 B/c
        machine.connection_mut(c).reserve(AccessKind::Write, 0, 4); // 1 cycle

        let mut r = SimReport {
            cycles: 20,
            ..Default::default()
        };
        r.collect(&machine);
        let conn = &r.connections[0];
        assert_eq!(conn.read.bytes, 24);
        assert!((conn.read.avg_bw - 24.0 / 20.0).abs() < 1e-9);
        assert!((conn.read.max_bw - 4.0).abs() < 1e-9);
        // Both read transfers ran at 4 B/cyc: 6 of 20 cycles at max.
        assert!((conn.read.max_bw_portion - 6.0 / 20.0).abs() < 1e-9);
        assert_eq!(conn.write.bytes, 4);
    }

    #[test]
    fn collect_memory_stats() {
        let mut machine = Machine::new();
        let mem = machine.add_memory(
            "SRAM",
            1024,
            32,
            4,
            2,
            Box::new(crate::machine::SramBehavior::default()),
        );
        machine
            .memory_mut(mem)
            .unwrap()
            .count(AccessKind::Read, 100);
        machine
            .memory_mut(mem)
            .unwrap()
            .count(AccessKind::Write, 60);
        let mut r = SimReport {
            cycles: 10,
            ..Default::default()
        };
        r.collect(&machine);
        let m = &r.memories[0];
        assert_eq!(m.bytes_read, 100);
        assert_eq!(m.bytes_written, 60);
        assert_eq!((m.reads, m.writes), (1, 1));
        assert!((m.avg_read_bw - 10.0).abs() < 1e-9);
        assert!((r.read_bw_of_kind("SRAM") - 10.0).abs() < 1e-9);
        assert_eq!(r.read_bw_of_kind("Register"), 0.0);
        assert!(r.memory_named("SRAM").is_some());
        assert!(!r.summary().is_empty());
    }
}
