//! Shard-exchange primitives for the group-sharded parallel engine.
//!
//! When [`SimOptions::threads`](crate::SimOptions) exceeds 1, the engine
//! may *offload* a shard-pure launch (see [`crate::Partition`]) to a worker
//! thread: the worker runs a clone of the engine state restricted to the
//! launch target's conflict group, runs it to drain, and sends the group's
//! final state back over a channel. The coordinator merges that state back
//! the first time the sequential path would have observed the launch's
//! completion — or discards it and replays sequentially whenever the
//! speculation window is ambiguous. This module holds the plain data types
//! exchanged between coordinator and workers plus the signal-id suffix
//! remap the merge applies; the engine-side gates, hooks, and merge logic
//! live in `engine.rs`.
//!
//! Exactness contract: a merge must leave every reported counter (cycles,
//! events, ops, buffer contents, traffic) bit-identical to the sequential
//! interleaving. Shards therefore never allocate buffers or elaborate the
//! machine (purity excludes those ops), so the only id space a shard grows
//! is the signal table — and signal ids are unobservable in reports, so
//! the merge may append the shard's new signals as a suffix and remap.

use std::sync::mpsc::Receiver;

use crate::engine::ProcRuntime;
use crate::error::SimError;
use crate::machine::Machine;
use crate::signal::{SignalState, SignalTable};
use crate::value::{SignalId, SimValue};

/// Everything a finished shard sends back to the coordinator.
pub(crate) struct ShardOut {
    /// The shard's machine (only the offloaded group's components,
    /// buffers, and connections are copied back).
    pub(crate) machine: Machine,
    /// The shard's signal table; signals at index `sig_base..` are new.
    pub(crate) signals: SignalTable,
    /// The shard's processor runtimes (only the group's are copied back).
    pub(crate) procs: Vec<ProcRuntime>,
    /// Coordinator signal-table length at offload time: the split between
    /// shared prefix and shard-created suffix.
    pub(crate) sig_base: usize,
    /// Resolve time of the root launch's done signal.
    pub(crate) rt: u64,
    /// Engine time at which the done signal resolved — the global-order
    /// position of the resolution, which bounds when an observer may
    /// already see it (`rt` only bounds the timestamp it carries).
    pub(crate) rp: u64,
    /// `ctx_born` of the resolving context: the time at which the wake
    /// *processing* the resolution was scheduled. `(rp, rb)` orders the
    /// resolution against a coordinator entry `(t, born)` even when the
    /// times tie — the earlier-scheduled wake pops first.
    pub(crate) rb: u64,
    /// The shard's final `now` (its last heap pop): after this time every
    /// shard-side event has happened in the sequential interleaving too.
    pub(crate) t_fin: u64,
    /// The done signal's payload (`equeue.return` values), un-remapped.
    pub(crate) payload: Vec<SimValue>,
    /// Counter deltas, folded into the coordinator at merge time.
    pub(crate) wakes: u64,
    pub(crate) ops_interpreted: u64,
    pub(crate) events_spawned: u64,
    pub(crate) idle_steps: u64,
    pub(crate) fused_trace_entries: u64,
    pub(crate) horizon: u64,
}

/// A shard still running on a worker thread.
pub(crate) struct InFlight {
    /// Conflict group the shard owns.
    pub(crate) group: u32,
    /// The root launch's done signal (the merge trigger).
    pub(crate) done: SignalId,
    /// The consumed heap entry `(time, seq, proc, born)` that rooted the
    /// shard — re-pushed verbatim to replay sequentially on abort.
    pub(crate) entry: (u64, u64, usize, u64),
    /// Completion channel from the worker.
    pub(crate) rx: Receiver<Result<ShardOut, SimError>>,
}

/// A joined shard whose resolution the sequential path has not yet
/// reached: applied once the pop order passes its `(rp, rb)` resolution
/// point (or aborted if the merge window is ambiguous).
pub(crate) struct Stashed {
    pub(crate) group: u32,
    pub(crate) done: SignalId,
    pub(crate) entry: (u64, u64, usize, u64),
    pub(crate) out: ShardOut,
}

/// Coordinator-side bookkeeping for the parallel runtime.
pub(crate) struct ParState {
    /// Worker budget: `in_flight` may hold at most `threads - 1` shards
    /// (the coordinator itself counts as one thread).
    pub(crate) threads: usize,
    pub(crate) in_flight: Vec<InFlight>,
    pub(crate) stashed: Vec<Stashed>,
    /// `(time, seq)` of heap entries whose speculation was aborted: the
    /// replayed pop must run sequentially, or an abort whose cause was the
    /// merge window itself would re-offload and spin forever.
    pub(crate) denied: std::collections::HashSet<(u64, u64)>,
}

impl ParState {
    pub(crate) fn new(threads: usize) -> Self {
        ParState {
            threads,
            in_flight: Vec::new(),
            stashed: Vec::new(),
            denied: std::collections::HashSet::new(),
        }
    }

    /// Whether `group` has a shard in flight or stashed (at most one shard
    /// per group may speculate at a time).
    pub(crate) fn group_active(&self, group: u32) -> bool {
        self.in_flight.iter().any(|f| f.group == group)
            || self.stashed.iter().any(|s| s.group == group)
    }

    /// Whether a worker slot is free.
    pub(crate) fn has_slot(&self) -> bool {
        self.in_flight.len() + 1 < self.threads
    }
}

/// Remaps a shard-created signal id (`>= sig_base`) into the coordinator's
/// suffix position. Prefix ids are shared and pass through unchanged.
#[inline]
fn remap_id(s: &mut SignalId, sig_base: usize, delta: u32) {
    if (s.0 as usize) >= sig_base {
        s.0 += delta;
    }
}

/// Remaps every signal reference inside a payload value.
pub(crate) fn remap_value(v: &mut SimValue, sig_base: usize, delta: u32) {
    match v {
        SimValue::Signal(s) => remap_id(s, sig_base, delta),
        SimValue::Deferred { signal, .. } => remap_id(signal, sig_base, delta),
        _ => {}
    }
}

/// Appends a shard's new signals (`sig_base..`) onto the coordinator's
/// table, remapping suffix-internal references (combinator dependents and
/// payload values) by the offset between the shard's and the coordinator's
/// suffix start. Returns that offset.
///
/// Prefix states are *not* copied back: the offload gates guarantee every
/// prefix signal a shard can reach is already resolved (and resolution is
/// first-wins, immutable), except the root done — which the caller
/// resolves explicitly with the remapped payload.
pub(crate) fn append_signal_suffix(
    coord: &mut SignalTable,
    shard: SignalTable,
    sig_base: usize,
) -> u32 {
    let delta = (coord.len() - sig_base) as u32;
    let mut states = shard.into_states();
    for mut state in states.drain(sig_base.min(states.len())..) {
        match &mut state {
            SignalState::Pending { dependents, .. } => {
                for d in dependents {
                    remap_id(d, sig_base, delta);
                }
            }
            SignalState::Resolved { payload, .. } => {
                for v in payload {
                    remap_value(v, sig_base, delta);
                }
            }
        }
        coord.push_state(state);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: u32) -> SignalId {
        SignalId(i)
    }

    #[test]
    fn remap_leaves_prefix_ids_alone() {
        let mut v = SimValue::Signal(sig(3));
        remap_value(&mut v, 5, 10);
        assert_eq!(v, SimValue::Signal(sig(3)));
        let mut v = SimValue::Deferred {
            signal: sig(7),
            index: 1,
        };
        remap_value(&mut v, 5, 10);
        assert_eq!(
            v,
            SimValue::Deferred {
                signal: sig(17),
                index: 1
            }
        );
    }

    #[test]
    fn suffix_append_remaps_dependents_and_payloads() {
        // Coordinator: 3 shared signals plus 2 of its own created since
        // the offload (so the shard's suffix lands at offset 5, delta 2).
        let mut coord = SignalTable::new();
        for _ in 0..3 {
            coord.fresh();
        }
        let sig_base = coord.len();
        let mut shard = coord.clone();
        coord.fresh();
        coord.fresh();

        // Shard creates: signal 3 (pending, dependent on nothing),
        // signal 4 = resolved carrying a reference to signal 3.
        let a = shard.fresh();
        assert_eq!(a, sig(3));
        let b = shard.fresh();
        shard.resolve(b, 9, vec![SimValue::Signal(a), SimValue::Int(1)]);

        let delta = append_signal_suffix(&mut coord, shard, sig_base);
        assert_eq!(delta, 2);
        assert_eq!(coord.len(), 7);
        // Shard signal 3 became coordinator signal 5; 4 became 6.
        assert!(!coord.is_resolved(sig(5)));
        assert_eq!(coord.resolve_time(sig(6)), Some(9));
        assert_eq!(
            coord.payload(sig(6)),
            &[SimValue::Signal(sig(5)), SimValue::Int(1)]
        );
    }

    #[test]
    fn suffix_combinator_dependents_survive_remap() {
        let mut coord = SignalTable::new();
        coord.fresh();
        let sig_base = coord.len();
        let mut shard = coord.clone();

        // Shard: two fresh signals and an AND over them, one resolved.
        let a = shard.fresh();
        let b = shard.fresh();
        let _both = shard.new_and(&[a, b]);
        shard.resolve(a, 4, vec![]);

        // Coordinator allocated one signal of its own meanwhile.
        coord.fresh();
        append_signal_suffix(&mut coord, shard, sig_base);
        // a->2, b->3, both->4; resolving b must cascade into `both`.
        assert_eq!(coord.resolve_time(sig(2)), Some(4));
        coord.resolve(sig(3), 11, vec![]);
        assert_eq!(coord.resolve_time(sig(4)), Some(11));
    }

    /// The exchange pattern the engine uses: scoped worker thread, owned
    /// state moved back over mpsc (the miri target for the shard-exchange
    /// primitives).
    #[test]
    fn scoped_channel_exchange_returns_owned_state() {
        let (tx, rx) = std::sync::mpsc::channel::<Result<SignalTable, SimError>>();
        let mut base = SignalTable::new();
        let root = base.fresh();
        std::thread::scope(|scope| {
            let mut shard = base.clone();
            scope.spawn(move || {
                let inner = shard.fresh();
                shard.resolve(inner, 3, vec![]);
                shard.resolve(root, 7, vec![SimValue::Int(42)]);
                let _ = tx.send(Ok(shard));
            });
        });
        let out = match rx.recv() {
            Ok(Ok(t)) => t,
            _ => panic!("worker did not deliver"),
        };
        assert_eq!(out.resolve_time(root), Some(7));
        assert_eq!(out.payload(root), &[SimValue::Int(42)]);
        // The coordinator's copy is untouched.
        assert!(!base.is_resolved(root));
    }
}
