//! The simulator library: extensible operation functions and component
//! factories (§IV-D).
//!
//! The engine consults a [`SimLibrary`] for
//!
//! * **external op implementations** — cycle counts for `equeue.op`
//!   signatures like `"mac4"` (§III-E);
//! * **processor profiles** — per-kind op timing (`ARMr5`, `MAC`,
//!   `AIEngine`, …);
//! * **memory factories** — mapping `create_mem` kind strings to
//!   [`MemoryBehavior`](crate::machine::MemoryBehavior) instances, so users
//!   can introduce custom components (e.g. a cache) without touching the
//!   engine.

use crate::machine::{
    CacheBehavior, DramBehavior, MemoryBehavior, ProcProfile, RegisterBehavior, SramBehavior,
};
use equeue_ir::AttrMap;
use std::collections::HashMap;

/// Description of a `create_mem` op handed to a memory factory.
#[derive(Debug, Clone)]
pub struct MemSpec {
    /// Kind string.
    pub kind: String,
    /// Capacity in elements.
    pub capacity_elems: usize,
    /// Bits per element.
    pub data_bits: u32,
    /// Banks.
    pub banks: u32,
    /// The op's full attribute dictionary, for custom parameters.
    pub attrs: AttrMap,
}

/// Factory for memory timing models.
pub type MemFactory = fn(&MemSpec) -> Box<dyn MemoryBehavior>;

/// An external operation implementation (for `equeue.op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtOp {
    /// Cycles the op occupies its processor.
    pub cycles: u64,
}

/// The extensible simulator library.
///
/// # Examples
///
/// Registering a custom external op and looking it up:
///
/// ```
/// use equeue_core::SimLibrary;
/// let mut lib = SimLibrary::standard();
/// lib.register_ext_op("fft8", 4);
/// assert_eq!(lib.ext_op("fft8").unwrap().cycles, 4);
/// assert_eq!(lib.ext_op("mac4").unwrap().cycles, 1); // built in
/// ```
pub struct SimLibrary {
    ext_ops: HashMap<String, ExtOp>,
    proc_profiles: HashMap<String, ProcProfile>,
    mem_factories: HashMap<String, MemFactory>,
    /// Cycles per multiply-accumulate when executing `linalg.conv2d` /
    /// `linalg.matmul` analytically. The Linalg level is the most abstract
    /// (and most pessimistic) estimate in the Fig. 1 hierarchy: a naive
    /// scalar schedule with three operand fetches, a multiply, an add, a
    /// writeback, and fetch/decode overhead — 8 cycles per MAC. Explicit
    /// Affine-level simulation comes in below this, matching the paper's
    /// Fig. 11b trend of runtime falling as lowering proceeds.
    pub linalg_cycles_per_mac: u64,
    /// Default concurrent access ports per memory.
    pub default_mem_ports: usize,
    energy_pj: HashMap<String, f64>,
}

impl std::fmt::Debug for SimLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLibrary")
            .field("ext_ops", &self.ext_ops.len())
            .field(
                "proc_profiles",
                &self.proc_profiles.keys().collect::<Vec<_>>(),
            )
            .field(
                "mem_factories",
                &self.mem_factories.keys().collect::<Vec<_>>(),
            )
            .finish()
    }
}

fn sram_factory(spec: &MemSpec) -> Box<dyn MemoryBehavior> {
    let cpa = spec.attrs.int("cycles_per_access").unwrap_or(1).max(0) as u64;
    Box::new(SramBehavior {
        cycles_per_access: cpa,
    })
}

fn register_factory(_spec: &MemSpec) -> Box<dyn MemoryBehavior> {
    Box::new(RegisterBehavior)
}

fn dram_factory(spec: &MemSpec) -> Box<dyn MemoryBehavior> {
    let latency = spec.attrs.int("latency").unwrap_or(10).max(0) as u64;
    let cpa = spec.attrs.int("cycles_per_access").unwrap_or(2).max(0) as u64;
    Box::new(DramBehavior {
        latency,
        cycles_per_access: cpa,
    })
}

fn cache_factory(spec: &MemSpec) -> Box<dyn MemoryBehavior> {
    let sets = spec.attrs.int("sets").unwrap_or(16).max(1) as usize;
    let ways = spec.attrs.int("ways").unwrap_or(4).max(1) as usize;
    let line = spec.attrs.int("line_elems").unwrap_or(8).max(1) as usize;
    let hit = spec.attrs.int("hit_cycles").unwrap_or(1).max(0) as u64;
    let miss = spec.attrs.int("miss_cycles").unwrap_or(10).max(0) as u64;
    Box::new(CacheBehavior::new(sets, ways, line, hit, miss))
}

impl SimLibrary {
    /// The standard library: SRAM/Register/DRAM/Cache memories, the
    /// processor kinds of [`equeue_dialect::kinds`], and the AI Engine
    /// intrinsics `mul4`/`mac4` plus a scalar `mac`.
    pub fn standard() -> Self {
        let mut lib = SimLibrary {
            ext_ops: HashMap::new(),
            proc_profiles: HashMap::new(),
            mem_factories: HashMap::new(),
            linalg_cycles_per_mac: 8,
            default_mem_ports: 2,
            energy_pj: HashMap::new(),
        };
        // First-order per-access energy (picojoules), ordered as the paper
        // describes: registers cheapest, SRAM costlier, DRAM costliest.
        for (kind, pj) in [
            ("Register", 0.05),
            ("SRAM", 1.0),
            ("Cache", 1.2),
            ("DRAM", 20.0),
            ("HostMem", 0.0),
        ] {
            lib.energy_pj.insert(kind.to_string(), pj);
        }
        // External ops (§III-E): mul4/mac4 compute 4 lanes × 2 ops in one
        // cycle on the AI Engine (§VII-C); a scalar mac is one cycle on a
        // MAC PE.
        lib.register_ext_op("mac", 1);
        lib.register_ext_op("mul4", 1);
        lib.register_ext_op("mac4", 1);

        // Processor profiles: every modelled processor issues one operation
        // per cycle; event issue and control bookkeeping are free (they are
        // queue pushes, not datapath work).
        for kind in ["ARMr5", "ARMr6", "MAC", "AIEngine", "Generic"] {
            lib.proc_profiles
                .insert(kind.to_string(), Self::default_profile());
        }

        lib.mem_factories.insert("SRAM".into(), sram_factory);
        lib.mem_factories
            .insert("Register".into(), register_factory);
        lib.mem_factories.insert("DRAM".into(), dram_factory);
        lib.mem_factories.insert("Cache".into(), cache_factory);
        lib
    }

    /// The profile shared by the standard processors: one cycle per compute
    /// op; structure declaration, event spawning, and control ops are free.
    pub fn default_profile() -> ProcProfile {
        let mut p = ProcProfile::uniform(1);
        for free in [
            "equeue.launch",
            "equeue.memcpy",
            "equeue.control_start",
            "equeue.control_and",
            "equeue.control_or",
            "equeue.await",
            "equeue.return",
            "equeue.alloc",
            "equeue.dealloc",
            "equeue.create_proc",
            "equeue.create_mem",
            "equeue.create_dma",
            "equeue.create_comp",
            "equeue.add_comp",
            "equeue.get_comp",
            "equeue.create_connection",
            "arith.constant",
            "memref.alloc",
            "memref.dealloc",
            "affine.yield",
            "affine.for",
            "affine.parallel",
        ] {
            p.per_op.insert(free.into(), 0);
        }
        p
    }

    /// Registers (or overrides) an external op implementation.
    pub fn register_ext_op(&mut self, signature: &str, cycles: u64) {
        self.ext_ops.insert(signature.to_string(), ExtOp { cycles });
    }

    /// Looks up an external op by signature.
    pub fn ext_op(&self, signature: &str) -> Option<ExtOp> {
        self.ext_ops.get(signature).copied()
    }

    /// Registers (or overrides) a processor profile for `kind`.
    pub fn register_proc_profile(&mut self, kind: &str, profile: ProcProfile) {
        self.proc_profiles.insert(kind.to_string(), profile);
    }

    /// The profile for processor `kind` (default profile when unknown).
    pub fn proc_profile(&self, kind: &str) -> ProcProfile {
        self.proc_profiles
            .get(kind)
            .cloned()
            .unwrap_or_else(Self::default_profile)
    }

    /// Registers (or overrides) a memory factory for `kind` — the §IV-D
    /// extension point.
    pub fn register_mem_factory(&mut self, kind: &str, factory: MemFactory) {
        self.mem_factories.insert(kind.to_string(), factory);
    }

    /// Builds the timing model for a memory spec; unknown kinds fall back
    /// to SRAM behaviour.
    pub fn make_memory(&self, spec: &MemSpec) -> Box<dyn MemoryBehavior> {
        match self.mem_factories.get(&spec.kind) {
            Some(f) => f(spec),
            None => sram_factory(spec),
        }
    }

    /// Per-access energy for a memory kind in picojoules (an `energy_pj`
    /// attribute on `create_mem` overrides this; unknown kinds cost SRAM
    /// energy).
    pub fn energy_per_access(&self, kind: &str) -> f64 {
        self.energy_pj.get(kind).copied().unwrap_or(1.0)
    }

    /// Registers (or overrides) the per-access energy for a memory kind.
    pub fn register_energy(&mut self, kind: &str, pj_per_access: f64) {
        self.energy_pj.insert(kind.to_string(), pj_per_access);
    }
}

impl Default for SimLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::AccessKind;

    fn spec(kind: &str) -> MemSpec {
        MemSpec {
            kind: kind.into(),
            capacity_elems: 1024,
            data_bits: 32,
            banks: 4,
            attrs: AttrMap::new(),
        }
    }

    #[test]
    fn standard_ops_present() {
        let lib = SimLibrary::standard();
        for sig in ["mac", "mul4", "mac4"] {
            assert_eq!(lib.ext_op(sig).unwrap().cycles, 1, "{sig}");
        }
        assert!(lib.ext_op("unknown").is_none());
    }

    #[test]
    fn profiles_make_events_free() {
        let lib = SimLibrary::standard();
        let p = lib.proc_profile("ARMr5");
        assert_eq!(p.cycles("equeue.launch"), 0);
        assert_eq!(p.cycles("equeue.memcpy"), 0);
        assert_eq!(p.cycles("arith.addi"), 1);
        assert_eq!(p.cycles("equeue.op"), 1);
        // Unknown kinds get the default profile.
        let q = lib.proc_profile("Weird");
        assert_eq!(q.cycles("arith.addi"), 1);
    }

    #[test]
    fn factories_dispatch_by_kind() {
        let lib = SimLibrary::standard();
        let mut sram = lib.make_memory(&spec("SRAM"));
        assert_eq!(sram.model_name(), "SRAM");
        assert_eq!(sram.access_cycles(AccessKind::Read, 0, 4, 4), 1);
        let mut reg = lib.make_memory(&spec("Register"));
        assert_eq!(reg.access_cycles(AccessKind::Read, 0, 4, 4), 0);
        let dram = lib.make_memory(&spec("DRAM"));
        assert_eq!(dram.model_name(), "DRAM");
        let cache = lib.make_memory(&spec("Cache"));
        assert_eq!(cache.model_name(), "Cache");
        // Unknown kind falls back to SRAM behaviour.
        let fallback = lib.make_memory(&spec("Scratchpad"));
        assert_eq!(fallback.model_name(), "SRAM");
    }

    #[test]
    fn custom_factory_and_ext_op() {
        fn slow(_: &MemSpec) -> Box<dyn MemoryBehavior> {
            Box::new(DramBehavior {
                latency: 99,
                cycles_per_access: 1,
            })
        }
        let mut lib = SimLibrary::standard();
        lib.register_mem_factory("Slow", slow);
        let mut m = lib.make_memory(&spec("Slow"));
        assert_eq!(m.access_cycles(AccessKind::Read, 0, 1, 1), 100);
        lib.register_ext_op("fir32", 16);
        assert_eq!(lib.ext_op("fir32").unwrap().cycles, 16);
    }

    #[test]
    fn mem_attrs_feed_factories() {
        let lib = SimLibrary::standard();
        let mut s = spec("Cache");
        s.attrs.set("miss_cycles", 50i64);
        s.attrs.set("sets", 2i64);
        let mut c = lib.make_memory(&s);
        // First access must miss with the configured penalty.
        assert_eq!(c.access_cycles(AccessKind::Read, 0, 1, 1), 50);
    }
}
