//! Structured simulation errors, run limits, and cooperative cancellation.
//!
//! Everything that can go wrong during `parse → compile → simulate` surfaces
//! as a [`SimError`] variant rather than a panic, so a long-running host (a
//! sweep driver, a simulation service) can report the failure and keep going.
//! [`RunLimits`] bounds a single run in cycles, scheduler events, live tensor
//! bytes, and wall-clock time; [`CancelToken`] lets another thread stop a run
//! (or a whole batched sweep) promptly with partial, well-formed statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which [`RunLimits`] field a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// `max_cycles`: the simulated clock passed the budget.
    Cycles,
    /// `max_events`: the scheduler processed too many wakes.
    Events,
    /// `max_live_tensor_bytes`: simultaneously-live tensor storage.
    LiveTensorBytes,
    /// `wall_deadline`: real elapsed time passed the budget.
    WallClock,
}

impl LimitKind {
    fn name(self) -> &'static str {
        match self {
            LimitKind::Cycles => "cycle",
            LimitKind::Events => "event",
            LimitKind::LiveTensorBytes => "live-tensor-byte",
            LimitKind::WallClock => "wall-clock (ms)",
        }
    }
}

/// Partial run statistics captured when a run stops early.
///
/// Carried by [`SimError::Limit`] and [`SimError::Cancelled`] so callers get
/// well-formed progress data even when a run does not finish.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Progress {
    /// Simulated cycles reached so far.
    pub cycles: u64,
    /// Scheduler events (wakes) processed so far.
    pub events: u64,
    /// Ops interpreted so far.
    pub ops: u64,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} after {} events, {} ops",
            self.cycles, self.events, self.ops
        )
    }
}

/// Details of an exceeded [`RunLimits`] budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitExceeded {
    /// Which budget was exceeded.
    pub kind: LimitKind,
    /// The configured budget value (ms for [`LimitKind::WallClock`]).
    pub limit: u64,
    /// Partial statistics at the point the run stopped.
    pub progress: Progress,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} limit {} exceeded at {}",
            self.kind.name(),
            self.limit,
            self.progress
        )
    }
}

/// Everything that can stop a simulation without producing a report.
///
/// The taxonomy mirrors the pipeline stages: [`Parse`](SimError::Parse) from
/// IR text, [`Layout`](SimError::Layout) from the structural prepass,
/// [`Type`](SimError::Type) from value-kind confusion at execution time,
/// [`Port`](SimError::Port) from component/connection misuse,
/// [`Deadlock`](SimError::Deadlock), [`Unsupported`](SimError::Unsupported),
/// and [`Runtime`](SimError::Runtime) from the engine itself, and
/// [`Limit`](SimError::Limit) / [`Cancelled`](SimError::Cancelled) from
/// [`RunLimits`] / [`CancelToken`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The IR text failed to parse (1-based source location).
    Parse {
        /// Line of the error.
        line: usize,
        /// Column of the error.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// An op was structurally malformed (wrong operand/region/attr shape).
    /// Raised lazily: only when the malformed op is actually executed.
    Layout {
        /// Fully-qualified op name, e.g. `equeue.launch`.
        op: String,
        /// What was malformed.
        msg: String,
    },
    /// A value had the wrong runtime kind (e.g. an int where a signal was
    /// expected).
    Type {
        /// The kind the op required.
        expected: &'static str,
        /// Display of the value actually found.
        got: String,
    },
    /// A structural hardware-model misuse: launching onto a non-executor,
    /// allocating on a non-memory, exceeding a memory's capacity, or
    /// malformed component composition.
    Port(String),
    /// No runnable work remains but events are still pending.
    Deadlock(String),
    /// The op or signature is recognised but not implemented.
    Unsupported(String),
    /// Any other execution failure (bad memcpy sizes, division by zero, ...).
    Runtime(String),
    /// A [`RunLimits`] budget was exceeded; carries partial statistics.
    Limit(LimitExceeded),
    /// The run observed its [`CancelToken`]; carries partial statistics.
    Cancelled(Progress),
    /// A serialized snapshot could not be decoded or does not match the
    /// module it is being resumed against (bad magic, unknown version,
    /// truncated stream, or shape mismatch).
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            SimError::Layout { op, msg } => write!(f, "layout error in '{op}': {msg}"),
            SimError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            SimError::Port(msg) => write!(f, "port error: {msg}"),
            SimError::Deadlock(msg) => write!(f, "deadlock: {msg}"),
            SimError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            SimError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            SimError::Limit(l) => write!(f, "{l}"),
            SimError::Cancelled(p) => write!(f, "cancelled at {p}"),
            SimError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<equeue_ir::IrError> for SimError {
    fn from(e: equeue_ir::IrError) -> Self {
        match e {
            equeue_ir::IrError::Parse { line, col, msg } => SimError::Parse { line, col, msg },
            equeue_ir::IrError::Verify(msg) => SimError::Layout {
                op: "<module>".into(),
                msg,
            },
            other => SimError::Runtime(other.to_string()),
        }
    }
}

/// Resource budgets for one simulation run, checked cheaply in the scheduler
/// loop.
///
/// Defaults are permissive: `max_events` keeps its historical runaway guard
/// of 500 M wakes, everything else is unlimited. Limit violations surface as
/// [`SimError::Limit`] carrying [`Progress`] at the stop point.
///
/// # Examples
///
/// ```
/// use equeue_core::RunLimits;
/// let limits = RunLimits {
///     max_cycles: 1_000_000,
///     ..RunLimits::default()
/// };
/// assert_eq!(limits.max_events, 500_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Stop once the simulated clock passes this cycle count.
    pub max_cycles: u64,
    /// Stop once the scheduler has processed this many wakes (guards
    /// runaway or non-terminating programs).
    pub max_events: u64,
    /// Stop once simultaneously-live tensor storage passes this many bytes.
    pub max_live_tensor_bytes: u64,
    /// Stop once this much real time has elapsed since the run started.
    /// Checked once per epoch (see [`crate::SimOptions`]), so enforcement
    /// granularity is one epoch of scheduler work.
    pub wall_deadline: Option<Duration>,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_cycles: u64::MAX,
            max_events: 500_000_000,
            max_live_tensor_bytes: u64::MAX,
            wall_deadline: None,
        }
    }
}

impl RunLimits {
    /// Fully unlimited budgets (no event guard either). Use with care.
    pub fn unlimited() -> Self {
        RunLimits {
            max_cycles: u64::MAX,
            max_events: u64::MAX,
            max_live_tensor_bytes: u64::MAX,
            wall_deadline: None,
        }
    }
}

/// A shared flag for cooperatively cancelling runs and sweeps.
///
/// Clones share the same underlying flag. The engine polls the token once
/// per epoch (1024 scheduler wakes or 4096 interpreted ops, whichever comes
/// first), so cancellation is observed within one epoch and surfaces as
/// [`SimError::Cancelled`] with partial statistics. `pool` workers check the
/// token before claiming each work item.
///
/// # Examples
///
/// ```
/// use equeue_core::CancelToken;
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_default_keeps_event_guard() {
        let l = RunLimits::default();
        assert_eq!(l.max_events, 500_000_000);
        assert_eq!(l.max_cycles, u64::MAX);
        assert_eq!(l.max_live_tensor_bytes, u64::MAX);
        assert!(l.wall_deadline.is_none());
        assert_eq!(RunLimits::unlimited().max_events, u64::MAX);
    }

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SimError::Limit(LimitExceeded {
            kind: LimitKind::Cycles,
            limit: 100,
            progress: Progress {
                cycles: 101,
                events: 7,
                ops: 3,
            },
        });
        let s = e.to_string();
        assert!(s.contains("cycle limit 100"));
        assert!(s.contains("cycle 101"));
        let p = SimError::Parse {
            line: 3,
            col: 9,
            msg: "expected '('".into(),
        };
        assert!(p.to_string().contains("3:9"));
        let t = SimError::Type {
            expected: "signal",
            got: "int 4".into(),
        };
        assert!(t.to_string().contains("expected signal"));
    }
}
