//! Operation-level tracing in the Chrome Trace Event Format (§IV-B).
//!
//! The engine records one *complete* event (`"ph": "X"`) per timed
//! operation, with the component hierarchy as `pid` and the processor name
//! as `tid`, so `chrome://tracing` / Perfetto render one row per processor.
//! Stalls (schedule-queue waits) are recorded as separate events in the
//! `"stall"` category — these are the blue "installing" slots of the
//! paper's Fig. 13.
//!
//! The JSON writer is hand-rolled: the allowed dependency set contains
//! `serde` but not `serde_json`, and the format is a flat array of small
//! objects.

use std::fmt::Write as _;

/// Event category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCat {
    /// A scheduled operation actively executing.
    Operation,
    /// Waiting on a contended resource (memory port, connection).
    Stall,
    /// Event-queue management (issue/enqueue markers).
    Control,
}

impl TraceCat {
    /// The category string emitted into the JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCat::Operation => "operation",
            TraceCat::Stall => "stall",
            TraceCat::Control => "control",
        }
    }
}

/// One trace record (a complete event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Operation name (e.g. `"equeue.read"`, `"mac4"`).
    pub name: String,
    /// Category.
    pub cat: TraceCat,
    /// Start timestamp in simulated cycles (rendered as µs).
    pub ts: u64,
    /// Duration in simulated cycles.
    pub dur: u64,
    /// Process row: the component path (e.g. `"Accel"`).
    pub pid: String,
    /// Thread row: the processor name (e.g. `"PE0"`).
    pub tid: String,
}

/// An in-memory trace; serialises to Chrome trace JSON.
///
/// # Examples
///
/// ```
/// use equeue_core::{Trace, TraceCat};
/// let mut t = Trace::new();
/// t.record("mac4", TraceCat::Operation, 3, 1, "Accel", "PE0");
/// let json = t.to_chrome_json();
/// assert!(json.contains("\"ph\": \"X\""));
/// assert!(json.contains("\"mac4\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            events: vec![],
            enabled: true,
        }
    }

    /// Creates a disabled trace that drops all records (for large sweeps).
    pub fn disabled() -> Self {
        Trace {
            events: vec![],
            enabled: false,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one complete event (no-op when disabled or `dur == 0`
    /// in the stall category).
    pub fn record(&mut self, name: &str, cat: TraceCat, ts: u64, dur: u64, pid: &str, tid: &str) {
        if !self.enabled {
            return;
        }
        if dur == 0 && cat == TraceCat::Stall {
            return;
        }
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts,
            dur,
            pid: pid.to_string(),
            tid: tid.to_string(),
        });
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises to Chrome Trace Event Format JSON (an array of complete
    /// events, one cycle rendered as one microsecond, as in the paper's
    /// Fig. 13).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 2);
        out.push_str("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}}}",
                json_string(&e.name),
                e.cat.as_str(),
                e.ts,
                e.dur,
                json_string(&e.pid),
                json_string(&e.tid),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serialises() {
        let mut t = Trace::new();
        t.record("equeue.read", TraceCat::Operation, 0, 4, "Accel", "PE0");
        t.record("stall", TraceCat::Stall, 4, 3, "Accel", "PE0");
        assert_eq!(t.len(), 2);
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"cat\": \"operation\""));
        assert!(json.contains("\"cat\": \"stall\""));
        assert!(json.contains("\"ts\": 0"));
        assert!(json.contains("\"dur\": 4"));
    }

    #[test]
    fn disabled_trace_drops_everything() {
        let mut t = Trace::disabled();
        t.record("x", TraceCat::Operation, 0, 1, "p", "t");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn zero_duration_stalls_skipped() {
        let mut t = Trace::new();
        t.record("stall", TraceCat::Stall, 0, 0, "p", "t");
        assert!(t.is_empty());
        t.record("op", TraceCat::Operation, 0, 0, "p", "t");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn valid_json_shape() {
        let mut t = Trace::new();
        for i in 0..3 {
            t.record(&format!("op{i}"), TraceCat::Operation, i, 1, "p", "t");
        }
        let json = t.to_chrome_json();
        // Separator count: exactly n-1 commas between objects.
        assert_eq!(json.matches("},\n{").count(), 2);
    }
}
