//! Fault injection for robustness testing: controlled perturbations of a
//! [`Module`] that exercise the engine's error paths.
//!
//! Each [`Fault`] mutates the IR the way a buggy generator, a bit-flip, or
//! an adversarial input would: renaming ops, dropping operands, zeroing
//! loop steps, inflating external-op latencies, corrupting shapes, or
//! deleting launch bodies. [`apply_faults`] applies a list of faults and
//! reports how many actually landed, so a test matrix can assert both that
//! the perturbation happened and that the resulting failure surfaced as a
//! typed [`crate::SimError`] — never a panic.
//!
//! The harness is differential by construction: applying an empty fault
//! list (or faults whose targets do not exist) leaves the module untouched,
//! so zero-fault injected runs must stay bit-identical to golden runs.
//!
//! # Examples
//!
//! ```
//! use equeue_core::fault::{apply_faults, Fault};
//! use equeue_ir::Module;
//!
//! let mut m = Module::new();
//! // An empty module has no ops: no fault can land.
//! let applied = apply_faults(&mut m, &[Fault::RenameOp { nth: 0, to: "bogus.op".into() }]);
//! assert_eq!(applied, 0);
//! ```

use equeue_ir::{Attr, Module, OpId};

/// One controlled IR perturbation. `nth` counts matching live ops in arena
/// order; a fault whose target does not exist is a no-op (and is not
/// counted by [`apply_faults`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Rename the `nth` live op to `to`: an unknown name executes as
    /// [`crate::SimError::Unsupported`], a known name with the wrong
    /// operand shape as [`crate::SimError::Layout`].
    RenameOp {
        /// Which live op (arena order).
        nth: usize,
        /// The replacement fully-qualified name.
        to: String,
    },
    /// Remove the last operand of the `nth` live op that has operands:
    /// an arity mismatch that decodes to [`crate::SimError::Layout`].
    DropOperand {
        /// Which live op with at least one operand.
        nth: usize,
    },
    /// Set the `step` attribute of the `nth` `affine.for` to zero: a loop
    /// that could never terminate, rejected at decode as
    /// [`crate::SimError::Layout`].
    ZeroLoopStep {
        /// Which `affine.for` op.
        nth: usize,
    },
    /// Override the `cycles` attribute of the `nth` `equeue.op`: perturbs
    /// event delivery times (huge values drive a run into
    /// [`crate::RunLimits::max_cycles`]).
    ExtOpCycles {
        /// Which `equeue.op`.
        nth: usize,
        /// The new cycle count.
        cycles: i64,
    },
    /// Replace the `shape` attribute of the `nth` `equeue.create_mem`:
    /// overflowing or negative dims surface as [`crate::SimError::Layout`]
    /// or [`crate::SimError::Port`].
    CorruptShape {
        /// Which `equeue.create_mem` op.
        nth: usize,
        /// The replacement dims.
        dims: Vec<i64>,
    },
    /// Delete every region of the `nth` live op that has regions: a
    /// body-less `equeue.launch`/`affine.for` decodes to
    /// [`crate::SimError::Layout`].
    DropRegions {
        /// Which live op with at least one region.
        nth: usize,
    },
}

/// Applies each fault in order, returning how many landed on a real target.
///
/// Faults are independent: each re-scans the (already perturbed) module, so
/// a matrix can stack several perturbations in one call.
pub fn apply_faults(module: &mut Module, faults: &[Fault]) -> usize {
    faults.iter().filter(|f| apply_fault(module, f)).count()
}

fn nth_live_op(module: &Module, nth: usize, pred: impl Fn(&Module, OpId) -> bool) -> Option<OpId> {
    module.live_ops().filter(|&id| pred(module, id)).nth(nth)
}

fn apply_fault(module: &mut Module, fault: &Fault) -> bool {
    match fault {
        Fault::RenameOp { nth, to } => {
            let Some(id) = nth_live_op(module, *nth, |_, _| true) else {
                return false;
            };
            module.op_mut(id).name = to.clone();
            true
        }
        Fault::DropOperand { nth } => {
            let Some(id) = nth_live_op(module, *nth, |m, id| !m.op(id).operands.is_empty()) else {
                return false;
            };
            module.op_mut(id).operands.pop();
            true
        }
        Fault::ZeroLoopStep { nth } => {
            let Some(id) = nth_live_op(module, *nth, |m, id| m.op(id).name == "affine.for") else {
                return false;
            };
            module.op_mut(id).attrs.set("step", Attr::Int(0));
            true
        }
        Fault::ExtOpCycles { nth, cycles } => {
            let Some(id) = nth_live_op(module, *nth, |m, id| m.op(id).name == "equeue.op") else {
                return false;
            };
            module.op_mut(id).attrs.set("cycles", Attr::Int(*cycles));
            true
        }
        Fault::CorruptShape { nth, dims } => {
            let Some(id) = nth_live_op(module, *nth, |m, id| m.op(id).name == "equeue.create_mem")
            else {
                return false;
            };
            module
                .op_mut(id)
                .attrs
                .set("shape", Attr::IntArray(dims.clone()));
            true
        }
        Fault::DropRegions { nth } => {
            let Some(id) = nth_live_op(module, *nth, |m, id| !m.op(id).regions.is_empty()) else {
                return false;
            };
            module.op_mut(id).regions.clear();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_without_targets_are_noops() {
        let mut m = Module::new();
        let n = apply_faults(
            &mut m,
            &[
                Fault::RenameOp {
                    nth: 0,
                    to: "x.y".into(),
                },
                Fault::DropOperand { nth: 0 },
                Fault::ZeroLoopStep { nth: 0 },
                Fault::ExtOpCycles { nth: 0, cycles: 9 },
                Fault::CorruptShape {
                    nth: 0,
                    dims: vec![-1],
                },
                Fault::DropRegions { nth: 0 },
            ],
        );
        assert_eq!(n, 0);
    }
}
