//! Compile-once / run-many simulation: [`CompiledModule`].
//!
//! [`crate::simulate_with`] re-runs the layout prepass ([§ hot-path
//! architecture](crate)) on every call. That is the right trade-off for a
//! single simulation, but design-space exploration sweeps re-simulate the
//! same module under different options (and batched sweeps run many
//! independent simulations from a thread pool). `CompiledModule` splits
//! compilation from execution so the prepass is paid once:
//!
//! * **compile** — [`CompiledModule::compile`] runs the prepass and captures
//!   `(Module, SimLibrary, Plan)` in one immutable handle.
//! * **run** — [`CompiledModule::simulate`] executes the pre-built plan.
//!   Every run constructs its own engine (machine, signal table, processor
//!   runtimes, frames), so repeated — and *concurrent* — runs are
//!   independent and bit-identical to fresh [`crate::simulate_with`] calls.
//!
//! The handle is `Send + Sync` (statically asserted below): share one
//! `CompiledModule` across a worker pool by reference and call
//! [`CompiledModule::simulate`] from each thread.
//!
//! The captured [`Plan`] also carries the fused loop traces built for the
//! [`crate::Backend::Fused`] execution backend; they are plain immutable
//! data, so the backend remains a **per-run** choice — one compiled handle
//! can serve `Fused` and `Interp` runs concurrently, with bit-identical
//! cycle/event/op counts between them (see `docs/fused-backend.md`).

use crate::engine::{
    resume_with_plan, run_with_plan, snapshot_with_plan, Backend, Plan, SimError, SimOptions,
};
use crate::library::SimLibrary;
use crate::profile::SimReport;
use crate::snapshot::Snapshot;
use equeue_ir::Module;
use std::time::Instant;

/// A module compiled for repeated simulation: the layout prepass ([`Plan`])
/// is built once and reused by every [`CompiledModule::simulate`] call.
///
/// # Examples
///
/// Compile once, simulate twice (identical reports, one prepass):
///
/// ```
/// use equeue_ir::{Module, OpBuilder};
/// use equeue_dialect::{EqueueBuilder, kinds};
/// use equeue_core::{CompiledModule, SimLibrary, SimOptions};
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let pe = b.create_proc(kinds::MAC);
/// let start = b.control_start();
/// let launch = b.launch(start, pe, &[], vec![]);
/// let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// body.ext_op("mac", vec![], vec![]);
/// body.ret(vec![]);
/// let done = launch.done;
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// b.await_all(vec![done]);
///
/// let compiled = CompiledModule::compile(m, SimLibrary::standard())?;
/// let opts = SimOptions::default();
/// let first = compiled.simulate(&opts)?;
/// let second = compiled.simulate(&opts)?;
/// assert_eq!(first.cycles, second.cycles);
/// # Ok::<(), equeue_core::SimError>(())
/// ```
///
/// Shared across threads (the handle is `Send + Sync`; all mutable state is
/// per-run):
///
/// ```
/// # use equeue_ir::{Module, OpBuilder};
/// # use equeue_dialect::{EqueueBuilder, kinds};
/// # use equeue_core::{CompiledModule, SimLibrary, SimOptions};
/// # let mut m = Module::new();
/// # let blk = m.top_block();
/// # let mut b = OpBuilder::at_end(&mut m, blk);
/// # let pe = b.create_proc(kinds::MAC);
/// # let start = b.control_start();
/// # let launch = b.launch(start, pe, &[], vec![]);
/// # let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// # body.ext_op("mac", vec![], vec![]);
/// # body.ret(vec![]);
/// # let done = launch.done;
/// # let mut b = OpBuilder::at_end(&mut m, blk);
/// # b.await_all(vec![done]);
/// let compiled = CompiledModule::compile(m, SimLibrary::standard()).unwrap();
/// let cycles: Vec<u64> = std::thread::scope(|s| {
///     let handles: Vec<_> = (0..4)
///         .map(|_| s.spawn(|| compiled.simulate(&SimOptions::default()).unwrap().cycles))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect()
/// });
/// assert!(cycles.windows(2).all(|w| w[0] == w[1]));
/// ```
#[derive(Debug)]
pub struct CompiledModule {
    module: Module,
    library: SimLibrary,
    plan: Plan,
}

impl CompiledModule {
    /// Runs the layout prepass on `module` against `library` and captures
    /// both. Strict: a structurally-malformed op anywhere in the module —
    /// even dead code — is reported here as [`SimError::Layout`] instead of
    /// at execution time. (The one-shot [`crate::simulate_with`] path keeps
    /// the historical lazy semantics: malformed ops only fail if executed.)
    ///
    /// # Errors
    ///
    /// [`SimError::Layout`] naming the first malformed op.
    pub fn compile(module: Module, library: SimLibrary) -> Result<Self, SimError> {
        let plan = Plan::build(&module, &library);
        if let Some((op, msg)) = plan.first_invalid() {
            return Err(SimError::Layout {
                op: op.to_string(),
                msg: msg.to_string(),
            });
        }
        Ok(CompiledModule {
            module,
            library,
            plan,
        })
    }

    /// Compiles with the standard library ([`SimLibrary::standard`]).
    ///
    /// # Errors
    ///
    /// See [`CompiledModule::compile`].
    pub fn compile_standard(module: Module) -> Result<Self, SimError> {
        Self::compile(module, SimLibrary::standard())
    }

    /// Parses IR text and compiles it: the full `parse → compile` front
    /// half of the pipeline with every failure surfaced as a typed
    /// [`SimError`].
    ///
    /// # Errors
    ///
    /// [`SimError::Parse`] with 1-based line/column context when the text
    /// is rejected, otherwise see [`CompiledModule::compile`].
    pub fn compile_text(text: &str, library: SimLibrary) -> Result<Self, SimError> {
        let module = equeue_ir::parse_module(text)?;
        Self::compile(module, library)
    }

    /// Simulates the compiled module. Equivalent to
    /// [`crate::simulate_with`] on the captured module and library — same
    /// cycles, events, and interpreted-op counts — minus the per-call
    /// prepass. Takes `&self`: callable repeatedly and from multiple
    /// threads at once.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn simulate(&self, options: &SimOptions) -> Result<SimReport, SimError> {
        run_with_plan(
            &self.module,
            &self.plan,
            &self.library,
            options,
            Instant::now(),
        )
    }

    /// Runs the module up to [`SimOptions::snapshot_at`] and captures a
    /// [`Snapshot`] of the complete engine state at that cycle boundary.
    ///
    /// The capture lands at the first scheduler boundary at or after the
    /// requested cycle: every event strictly before it has been processed.
    /// Under [`Backend::Fused`] a cut requested mid-trace lands at the next
    /// trace exit (recorded in [`Snapshot::actual_cut`]). If the program
    /// finishes before the cut, the snapshot records the terminal state and
    /// [`Snapshot::completed`] is `true`.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] when `options.snapshot_at` is `None`;
    /// otherwise any error the run itself produces (see [`SimError`]).
    pub fn snapshot(&self, options: &SimOptions) -> Result<Snapshot, SimError> {
        snapshot_with_plan(
            &self.module,
            &self.plan,
            &self.library,
            options,
            Instant::now(),
        )
    }

    /// Resumes a [`Snapshot`] and runs it to completion.
    ///
    /// The resulting report is bit-identical (cycles, events, ops, buffer
    /// contents, traffic) to an uninterrupted [`simulate`] of the same
    /// module, regardless of which backend captured the snapshot and which
    /// resumes it — except `execution_time`, which covers only the resumed
    /// window. Counters are run totals continuing from the snapshot. The
    /// wall-clock budget ([`crate::RunLimits::wall_deadline`]) restarts at
    /// the resume; cycle/event budgets continue from the captured counters.
    /// `options.snapshot_at` is ignored — a resumed run always runs to
    /// completion. With `trace: true`, the report's waveform covers only
    /// the resumed window: per trace row, a suffix of the full-run
    /// waveform — work already executed or issued at capture time (e.g. a
    /// DMA transfer in flight across the cut) belongs to the pre-cut leg.
    ///
    /// [`simulate`]: CompiledModule::simulate
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] when the snapshot does not match this module;
    /// otherwise any error the resumed run produces (see [`SimError`]).
    pub fn resume(&self, snapshot: &Snapshot, options: &SimOptions) -> Result<SimReport, SimError> {
        resume_with_plan(
            &self.module,
            &self.plan,
            &self.library,
            options,
            Instant::now(),
            snapshot,
        )
    }

    /// The compiled module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The prepass facts for this module: decoded components, memory
    /// timing models, connection tables, and per-loop fusion verdicts —
    /// the static-analysis view of the captured [`Plan`]. Pure data; cheap
    /// relative to compilation (it re-walks the decoded op table, not the
    /// IR attribute maps).
    pub fn facts(&self) -> crate::PrepassFacts {
        crate::facts::facts_from_plan(&self.module, &self.plan, &self.library)
    }

    /// The captured simulator library.
    pub fn library(&self) -> &SimLibrary {
        &self.library
    }

    /// The compile-time conflict partition: independent processor/DMA
    /// groups (mirroring `equeue-analysis`'s `ConflictPass` bit-for-bit)
    /// plus the per-launch shard-purity verdicts the parallel runtime
    /// ([`crate::SimOptions::threads`]) keys off.
    pub fn partition(&self) -> &crate::Partition {
        &self.plan.partition
    }

    /// Releases the handle, returning the module (e.g. to mutate and
    /// recompile).
    pub fn into_module(self) -> Module {
        self.module
    }
}

// Concurrency audit, enforced at compile time: the shared, read-only side of
// a simulation — the IR, the pre-decoded plan (op table, scope layouts,
// capture maps), and the library — must be `Send + Sync` so one
// `CompiledModule` can back a thread pool. All mutable state (machine,
// signals, frames, processor runtimes) lives in the per-run engine.
const _: () = {
    const fn _send_sync<T: Send + Sync>() {}
    _send_sync::<CompiledModule>();
    _send_sync::<Module>();
    _send_sync::<Plan>();
    _send_sync::<SimLibrary>();
    _send_sync::<SimOptions>();
    _send_sync::<Backend>();
    _send_sync::<crate::CancelToken>();
    _send_sync::<crate::RunLimits>();
    _send_sync::<SimError>();
    _send_sync::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, EqueueBuilder};
    use equeue_ir::OpBuilder;

    fn chain_module(n: usize) -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let mut dep = b.control_start();
        for _ in 0..n {
            let l = b.launch(dep, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            dep = l.done;
            b = OpBuilder::at_end(&mut m, blk);
        }
        b.await_all(vec![dep]);
        m
    }

    #[test]
    fn repeated_runs_match_fresh_simulation() {
        let m = chain_module(10);
        let opts = SimOptions {
            trace: false,
            ..Default::default()
        };
        let fresh = crate::simulate_with(&m, &SimLibrary::standard(), &opts).unwrap();
        let compiled = CompiledModule::compile(m, SimLibrary::standard()).unwrap();
        for _ in 0..3 {
            let r = compiled.simulate(&opts).unwrap();
            assert_eq!(r.cycles, fresh.cycles);
            assert_eq!(r.events_processed, fresh.events_processed);
            assert_eq!(r.ops_interpreted, fresh.ops_interpreted);
        }
    }

    #[test]
    fn concurrent_runs_are_bit_identical() {
        let compiled = CompiledModule::compile_standard(chain_module(20)).unwrap();
        let opts = SimOptions::default();
        let baseline = compiled.simulate(&opts).unwrap();
        let results: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let r = compiled.simulate(&opts).unwrap();
                        (r.cycles, r.events_processed, r.ops_interpreted)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (cycles, events, ops) in results {
            assert_eq!(cycles, baseline.cycles);
            assert_eq!(events, baseline.events_processed);
            assert_eq!(ops, baseline.ops_interpreted);
        }
    }

    #[test]
    fn accessors_round_trip() {
        let m = chain_module(2);
        let n_ops = m.num_ops();
        let compiled = CompiledModule::compile_standard(m).unwrap();
        assert_eq!(compiled.module().num_ops(), n_ops);
        assert_eq!(compiled.library().ext_op("mac").unwrap().cycles, 1);
        let back = compiled.into_module();
        assert_eq!(back.num_ops(), n_ops);
    }

    #[test]
    fn per_run_options_respected() {
        // One compile, different options per run: tracing on/off must not
        // change timing, and a tiny wake budget must fail only that run.
        let compiled = CompiledModule::compile_standard(chain_module(10)).unwrap();
        let loud = compiled.simulate(&SimOptions::default()).unwrap();
        let quiet = compiled
            .simulate(&SimOptions {
                trace: false,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(loud.cycles, quiet.cycles);
        assert!(!loud.trace.is_empty());
        assert!(quiet.trace.is_empty());
        let starved = compiled.simulate(&SimOptions {
            trace: false,
            limits: crate::RunLimits {
                max_events: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(matches!(starved, Err(SimError::Limit(_))));
        // The handle is unharmed by the failed run.
        assert_eq!(
            compiled.simulate(&SimOptions::default()).unwrap().cycles,
            loud.cycles
        );
    }

    #[test]
    fn backend_is_a_per_run_choice() {
        // One compiled handle serves both execution backends; counters
        // must be bit-identical between them.
        let compiled = CompiledModule::compile_standard(chain_module(10)).unwrap();
        let run = |backend| {
            let r = compiled
                .simulate(&SimOptions {
                    trace: false,
                    backend,
                    ..Default::default()
                })
                .unwrap();
            (r.cycles, r.events_processed, r.ops_interpreted)
        };
        assert_eq!(run(Backend::Fused), run(Backend::Interp));
    }
}
