//! Scenario tests for the simulation engine: each exercises one modelled
//! hardware behaviour end to end through a small EQueue program.

use equeue_core::{simulate, simulate_with, RunLimits, SimError, SimLibrary, SimOptions};
use equeue_dialect::{kinds, ArithBuilder, ConnKind, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type, ValueId};

fn one_pe_reading(
    mem_kind: &str,
    mem_attrs: &[(&str, i64)],
    elems: usize,
    banks: u32,
    conn: Option<(ConnKind, u32)>,
) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mut spec = b
        .op("equeue.create_mem")
        .attr("kind", mem_kind)
        .attr("shape", vec![elems as i64])
        .attr("data_bits", 32i64)
        .attr("banks", banks as i64);
    for (k, v) in mem_attrs {
        spec = spec.attr(k, *v);
    }
    let mem = spec.result(Type::Mem).finish_value();
    let buf = b.alloc(mem, &[elems], Type::I32);
    let connection = conn.map(|(kind, bw)| b.create_connection(kind, bw));
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.read(l.body_args[0], connection);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

#[test]
fn dram_latency_dominates_small_reads() {
    // DRAM: 10-cycle activation + 2 cycles per beat (defaults).
    let m = one_pe_reading(kinds::DRAM, &[], 4, 4, None);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 10 + 2);
}

#[test]
fn dram_latency_configurable_via_attrs() {
    let m = one_pe_reading(
        kinds::DRAM,
        &[("latency", 50), ("cycles_per_access", 1)],
        4,
        4,
        None,
    );
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 50 + 1);
}

#[test]
fn cache_cold_miss_then_hit() {
    // Two reads of the same buffer: first access misses per line, second
    // hits. Geometry: one 4-elem line covers the whole buffer.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b
        .op("equeue.create_mem")
        .attr("kind", kinds::CACHE)
        .attr("shape", vec![4i64])
        .attr("data_bits", 32i64)
        .attr("banks", 1i64)
        .attr("line_elems", 4i64)
        .attr("hit_cycles", 1i64)
        .attr("miss_cycles", 10i64)
        .result(Type::Mem)
        .finish_value();
    let buf = b.alloc(mem, &[4], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.read(l.body_args[0], None); // miss: 10
        ib.read(l.body_args[0], None); // hit: 1
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 11);
}

#[test]
fn window_connection_serialises_read_and_write() {
    // A Window connection locks for exclusive access (§III-A); a Streaming
    // one overlaps directions. Program: one PE reads while another writes
    // through the same connection.
    fn build(kind: ConnKind) -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe0 = b.create_proc(kinds::MAC);
        let pe1 = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::REGISTER, &[32], 32, 1);
        let src = b.alloc(mem, &[8], Type::I32); // 32 bytes
        let dst = b.alloc(mem, &[8], Type::I32);
        let conn = b.create_connection(kind, 4); // 8 cycles per transfer
        let start = b.control_start();
        let l0 = b.launch(start, pe0, &[src, conn], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l0.body);
            ib.read(l0.body_args[0], Some(l0.body_args[1]));
            ib.ret(vec![]);
        }
        let mut b = OpBuilder::at_end(&mut m, blk);
        let l1 = b.launch(start, pe1, &[dst, conn], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l1.body);
            let zero = ib.const_int(0, Type::I32);
            ib.write(zero, l1.body_args[0], Some(l1.body_args[1]));
            ib.ret(vec![]);
        }
        let all = {
            let mut b = OpBuilder::at_end(&mut m, blk);
            let s = b.control_and(vec![l0.done, l1.done]);
            b.await_all(vec![s]);
            s
        };
        let _ = all;
        m
    }
    let streaming = simulate(&build(ConnKind::Streaming)).unwrap().cycles;
    let window = simulate(&build(ConnKind::Window)).unwrap().cycles;
    assert_eq!(streaming, 8); // directions overlap
    assert_eq!(window, 16); // exclusive lock serialises
}

#[test]
fn nested_launches_three_deep() {
    // Fig. 6's control hierarchy: ARMr5 launches a kernel which launches a
    // MAC; signals propagate back up through return values.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let arm = b.create_proc(kinds::ARM_R5);
    let kernel = b.create_proc(kinds::GENERIC);
    let mac = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let outer = b.launch(start, arm, &[], vec![]);
    {
        let mut ob = OpBuilder::at_end(b.module_mut(), outer.body);
        let s1 = ob.control_start();
        let mid = ob.launch(s1, kernel, &[], vec![]);
        {
            let mut mb = OpBuilder::at_end(ob.module_mut(), mid.body);
            let s2 = mb.control_start();
            let inner = mb.launch(s2, mac, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(mb.module_mut(), inner.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            let mut mb = OpBuilder::at_end(&mut m, mid.body);
            mb.await_all(vec![inner.done]);
            mb.ret(vec![]);
        }
        let mut ob = OpBuilder::at_end(&mut m, outer.body);
        ob.await_all(vec![mid.done]);
        ob.ret(vec![]);
    }
    let outer_done = outer.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![outer_done]);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 2); // the two macs; all control is free
}

#[test]
fn memcpy_through_bandwidth_limited_connection() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::REGISTER, &[64], 32, 1);
    let src = b.alloc(mem, &[16], Type::I32); // 64 bytes
    let dst = b.alloc(mem, &[16], Type::I32);
    let dma = b.create_dma();
    let conn = b.create_connection(ConnKind::Streaming, 8); // 8 cycles
    let start = b.control_start();
    let done = b.memcpy(start, src, dst, dma, Some(conn));
    b.await_all(vec![done]);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 8);
}

#[test]
fn launch_can_target_dma() {
    // After --memcpy-to-launch, launches run on DMA components.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let dma = b.create_dma();
    let start = b.control_start();
    let l = b.launch(start, dma, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    assert_eq!(simulate(&m).unwrap().cycles, 1);
}

#[test]
fn energy_orders_register_sram_dram() {
    let run = |kind: &str| {
        let m = one_pe_reading(kind, &[], 8, 1, None);
        simulate(&m).unwrap().total_memory_energy_pj()
    };
    let reg = run(kinds::REGISTER);
    let sram = run(kinds::SRAM);
    let dram = run(kinds::DRAM);
    assert!(reg < sram, "register {reg} !< sram {sram}");
    assert!(sram < dram, "sram {sram} !< dram {dram}");
    assert!(reg > 0.0);
}

#[test]
fn energy_attr_overrides_kind_default() {
    let m = one_pe_reading(kinds::SRAM, &[], 8, 1, None);
    let base = simulate(&m).unwrap().total_memory_energy_pj();
    let m2 = one_pe_reading(kinds::SRAM, &[("energy_pj", 7)], 8, 1, None);
    let custom = simulate(&m2).unwrap().total_memory_energy_pj();
    assert!((base - 1.0).abs() < 1e-9); // one access × 1 pJ
    assert!((custom - 7.0).abs() < 1e-9);
}

#[test]
fn await_can_wait_on_multiple_unordered_signals() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let start = b.control_start();
    let mut dones: Vec<ValueId> = vec![];
    for len in [5i64, 2, 9] {
        let pe = b.create_proc(kinds::MAC);
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.op")
                .attr("signature", "w")
                .attr("cycles", len)
                .finish();
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    // Await them all directly (no control_and).
    b.await_all(dones);
    assert_eq!(simulate(&m).unwrap().cycles, 9);
}

#[test]
fn allocation_overflow_is_a_port_error() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::SRAM, &[4], 32, 1);
    b.alloc(mem, &[3], Type::I32);
    b.alloc(mem, &[3], Type::I32); // 6 > 4
    let err = simulate(&m).unwrap_err();
    assert!(matches!(err, SimError::Port(_)), "{err}");
    assert!(err.to_string().contains("overflow"));
}

#[test]
fn wake_limit_guards_runaway_programs() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let mut dep = start;
    for _ in 0..100 {
        let l = b.launch(dep, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
        }
        dep = l.done;
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(vec![dep]);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &SimOptions {
            trace: false,
            limits: RunLimits {
                max_events: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Limit(_)), "{err}");
}

#[test]
fn dealloc_releases_capacity_mid_program() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::SRAM, &[4], 32, 1);
    let first = b.alloc(mem, &[3], Type::I32);
    b.dealloc(first);
    b.alloc(mem, &[3], Type::I32); // fits after dealloc
    assert!(simulate(&m).is_ok());
}
