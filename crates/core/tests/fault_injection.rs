//! Fault-injection matrix: every [`Fault`] kind applied to a realistic
//! program must surface as a typed [`SimError`] (or complete cleanly under
//! limits) — never a panic — and the zero-fault run must stay bit-identical
//! to the golden run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use equeue_core::fault::{apply_faults, Fault};
use equeue_core::{simulate_with, RunLimits, SimError, SimLibrary, SimOptions, SimReport};
use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type};

/// A program touching every surface the faults target: a memory with a
/// shape, a launch with a body, an `affine.for`, an `equeue.op`, and ops
/// with operands — so every fault kind has a live target.
fn base_program() -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b.create_mem(kinds::SRAM, &[64], 32, 2);
    let buf = b.alloc(mem, &[16], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let c = ib.const_int(2, Type::I32);
        let (_, body, _iv) = ib.affine_for(0, 8, 1);
        {
            let mut lb = OpBuilder::at_end(ib.module_mut(), body);
            lb.muli(c, c);
            lb.affine_yield();
        }
        ib.read(l.body_args[0], None);
        ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

fn bounded_options() -> SimOptions {
    SimOptions {
        trace: false,
        limits: RunLimits {
            max_cycles: 10_000_000,
            max_events: 1_000_000,
            max_live_tensor_bytes: 64 << 20,
            wall_deadline: Some(Duration::from_secs(5)),
        },
        cancel: None,
        ..Default::default()
    }
}

fn run(m: &Module) -> Result<SimReport, SimError> {
    simulate_with(m, &SimLibrary::standard(), &bounded_options())
}

#[test]
fn zero_fault_runs_stay_bit_identical_to_golden() {
    let golden = run(&base_program()).unwrap();

    let mut injected = base_program();
    assert_eq!(apply_faults(&mut injected, &[]), 0);
    let report = run(&injected).unwrap();

    assert_eq!(report.cycles, golden.cycles);
    assert_eq!(report.events_processed, golden.events_processed);
    assert_eq!(report.ops_interpreted, golden.ops_interpreted);
    assert_eq!(report.buffers, golden.buffers);
}

#[test]
fn every_fault_kind_yields_a_typed_error_or_clean_run() {
    // (name, faults, may_succeed): a landed fault must either produce a
    // typed SimError or — for purely quantitative perturbations like a
    // latency change — a clean bounded run. Panics always fail the test.
    let matrix: Vec<(&str, Vec<Fault>, bool)> = vec![
        (
            "rename-to-unknown-op",
            vec![Fault::RenameOp {
                nth: 6,
                to: "bogus.op".into(),
            }],
            false,
        ),
        (
            "rename-breaks-arity",
            // The alloc op's (mem) operand list is the wrong shape for a
            // launch, which needs (signal, proc, ...).
            vec![Fault::RenameOp {
                nth: 2,
                to: "equeue.launch".into(),
            }],
            false,
        ),
        ("drop-operand", vec![Fault::DropOperand { nth: 0 }], false),
        (
            "zero-loop-step",
            vec![Fault::ZeroLoopStep { nth: 0 }],
            false,
        ),
        (
            "ext-op-small-latency",
            vec![Fault::ExtOpCycles { nth: 0, cycles: 17 }],
            true,
        ),
        (
            "ext-op-huge-latency",
            vec![Fault::ExtOpCycles {
                nth: 0,
                cycles: i64::MAX,
            }],
            false,
        ),
        (
            "corrupt-shape-negative",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![-4],
            }],
            false,
        ),
        (
            "corrupt-shape-overflow",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![i64::MAX, i64::MAX],
            }],
            false,
        ),
        ("drop-regions", vec![Fault::DropRegions { nth: 0 }], false),
        (
            "stacked-faults",
            vec![
                Fault::DropOperand { nth: 2 },
                Fault::ZeroLoopStep { nth: 0 },
                Fault::CorruptShape {
                    nth: 0,
                    dims: vec![-1],
                },
            ],
            false,
        ),
    ];

    for (name, faults, may_succeed) in matrix {
        let mut m = base_program();
        let landed = apply_faults(&mut m, &faults);
        assert!(landed > 0, "{name}: no fault landed");

        let outcome = catch_unwind(AssertUnwindSafe(|| run(&m)));
        match outcome {
            Ok(Ok(_)) => {
                assert!(may_succeed, "{name}: expected a SimError, run succeeded");
            }
            Ok(Err(err)) => {
                // Every failure is a typed variant by construction; spot-check
                // the Display is non-empty and carries context.
                assert!(!err.to_string().is_empty(), "{name}");
            }
            Err(_) => panic!("{name}: simulation panicked"),
        }
    }
}

#[test]
fn huge_latency_fault_hits_cycle_limit_with_progress() {
    let mut m = base_program();
    assert_eq!(
        apply_faults(
            &mut m,
            &[Fault::ExtOpCycles {
                nth: 0,
                cycles: i64::MAX,
            }],
        ),
        1
    );
    let err = run(&m).unwrap_err();
    match err {
        SimError::Limit(l) => assert!(l.progress.events > 0, "{:?}", l.progress),
        // Saturating clock arithmetic may instead surface as a runtime or
        // deadlock error; any typed error is acceptable, panics are not.
        other => assert!(!other.to_string().is_empty()),
    }
}
