//! Unit tests for [`RunLimits`] and [`CancelToken`]: budgets must terminate
//! otherwise-unbounded scenarios with a typed error carrying nonzero
//! progress, and cancellation must be observed within one epoch.

use std::time::Duration;

use equeue_core::{
    simulate_with, CancelToken, LimitKind, RunLimits, SimError, SimLibrary, SimOptions,
};
use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
use equeue_ir::{Attr, Module, OpBuilder, Type};

fn options(limits: RunLimits, cancel: Option<CancelToken>) -> SimOptions {
    SimOptions {
        trace: false,
        limits,
        cancel,
    }
}

/// A launch whose single external op claims `cycles` cycles: the simulated
/// clock jumps far ahead in one event.
fn long_ext_op(cycles: i64) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let l = b.launch(start, pe, &[], vec![]);
    let op = {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let op = ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
        op
    };
    m.op_mut(op).attrs.set("cycles", Attr::Int(cycles));
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// A top-level affine loop with `iters` iterations of pure arithmetic: no
/// hardware events, just interpreter work — the shape of an unbounded
/// (or wall-clock-heavy) host computation.
fn busy_loop(iters: i64) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let c = b.const_int(3, Type::I32);
    let (_, body, _iv) = b.affine_for(0, iters, 1);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), body);
        ib.muli(c, c);
        ib.affine_yield();
    }
    m
}

#[test]
fn max_cycles_terminates_long_run_with_progress() {
    let m = long_ext_op(1_000_000_000);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_cycles: 1_000,
                ..RunLimits::default()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::Cycles);
    assert_eq!(l.limit, 1_000);
    assert!(l.progress.cycles > 1_000, "{:?}", l.progress);
    assert!(l.progress.events > 0, "{:?}", l.progress);
}

#[test]
fn wall_deadline_terminates_busy_loop() {
    // 2B iterations would take minutes; the deadline stops it within one
    // interpreter epoch of 10 ms.
    let m = busy_loop(2_000_000_000);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                wall_deadline: Some(Duration::from_millis(10)),
                ..RunLimits::unlimited()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::WallClock);
    assert!(l.progress.ops > 0, "{:?}", l.progress);
}

#[test]
fn event_limit_reports_event_kind() {
    let m = long_ext_op(4);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_events: 1,
                ..RunLimits::default()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::Events);
}

#[test]
fn pre_cancelled_run_stops_on_first_epoch() {
    let m = long_ext_op(1_000_000);
    let lib = SimLibrary::standard();
    let token = CancelToken::new();
    token.cancel();
    let err = simulate_with(&m, &lib, &options(RunLimits::default(), Some(token))).unwrap_err();
    assert!(matches!(err, SimError::Cancelled(_)), "{err}");
}

#[test]
fn concurrent_cancel_stops_busy_loop() {
    let m = busy_loop(2_000_000_000);
    let lib = SimLibrary::standard();
    let token = CancelToken::new();
    let remote = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        remote.cancel();
    });
    // Generous event budget as a backstop so a broken token cannot hang CI;
    // the wall deadline below it would also fire long before that.
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                wall_deadline: Some(Duration::from_secs(60)),
                ..RunLimits::default()
            },
            Some(token),
        ),
    )
    .unwrap_err();
    canceller.join().unwrap();
    let SimError::Cancelled(progress) = err else {
        panic!("expected Cancelled, got {err}");
    };
    assert!(progress.ops > 0, "{progress:?}");
}

#[test]
fn limits_do_not_affect_short_runs() {
    // A run comfortably inside every budget completes normally.
    let m = long_ext_op(64);
    let lib = SimLibrary::standard();
    let report = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_cycles: 10_000,
                max_events: 10_000,
                max_live_tensor_bytes: 1 << 20,
                wall_deadline: Some(Duration::from_secs(30)),
            },
            Some(CancelToken::new()),
        ),
    )
    .unwrap();
    assert_eq!(report.cycles, 64);
}
