//! Unit tests for [`RunLimits`] and [`CancelToken`]: budgets must terminate
//! otherwise-unbounded scenarios with a typed error carrying nonzero
//! progress, and cancellation must be observed within one epoch.

use std::time::Duration;

use equeue_core::{
    simulate_with, Backend, CancelToken, LimitKind, RunLimits, SimError, SimLibrary, SimOptions,
};
use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
use equeue_ir::{Attr, Module, OpBuilder, Type};

fn options(limits: RunLimits, cancel: Option<CancelToken>) -> SimOptions {
    SimOptions {
        trace: false,
        limits,
        cancel,
        ..Default::default()
    }
}

/// A launch whose single external op claims `cycles` cycles: the simulated
/// clock jumps far ahead in one event.
fn long_ext_op(cycles: i64) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let l = b.launch(start, pe, &[], vec![]);
    let op = {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let op = ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
        op
    };
    m.op_mut(op).attrs.set("cycles", Attr::Int(cycles));
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// A top-level affine loop with `iters` iterations of pure arithmetic: no
/// hardware events, just interpreter work — the shape of an unbounded
/// (or wall-clock-heavy) host computation.
fn busy_loop(iters: i64) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let c = b.const_int(3, Type::I32);
    let (_, body, _iv) = b.affine_for(0, iters, 1);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), body);
        ib.muli(c, c);
        ib.affine_yield();
    }
    m
}

#[test]
fn max_cycles_terminates_long_run_with_progress() {
    let m = long_ext_op(1_000_000_000);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_cycles: 1_000,
                ..RunLimits::default()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::Cycles);
    assert_eq!(l.limit, 1_000);
    assert!(l.progress.cycles > 1_000, "{:?}", l.progress);
    assert!(l.progress.events > 0, "{:?}", l.progress);
}

#[test]
fn wall_deadline_terminates_busy_loop() {
    // 2B iterations would take minutes; the deadline stops it within one
    // interpreter epoch of 10 ms.
    let m = busy_loop(2_000_000_000);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                wall_deadline: Some(Duration::from_millis(10)),
                ..RunLimits::unlimited()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::WallClock);
    assert!(l.progress.ops > 0, "{:?}", l.progress);
}

#[test]
fn event_limit_reports_event_kind() {
    let m = long_ext_op(4);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_events: 1,
                ..RunLimits::default()
            },
            None,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::Events);
}

#[test]
fn pre_cancelled_run_stops_on_first_epoch() {
    let m = long_ext_op(1_000_000);
    let lib = SimLibrary::standard();
    let token = CancelToken::new();
    token.cancel();
    let err = simulate_with(&m, &lib, &options(RunLimits::default(), Some(token))).unwrap_err();
    assert!(matches!(err, SimError::Cancelled(_)), "{err}");
}

#[test]
fn concurrent_cancel_stops_busy_loop() {
    let m = busy_loop(2_000_000_000);
    let lib = SimLibrary::standard();
    let token = CancelToken::new();
    let remote = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        remote.cancel();
    });
    // Generous event budget as a backstop so a broken token cannot hang CI;
    // the wall deadline below it would also fire long before that.
    let err = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                wall_deadline: Some(Duration::from_secs(60)),
                ..RunLimits::default()
            },
            Some(token),
        ),
    )
    .unwrap_err();
    canceller.join().unwrap();
    let SimError::Cancelled(progress) = err else {
        panic!("expected Cancelled, got {err}");
    };
    assert!(progress.ops > 0, "{progress:?}");
}

/// A launch whose body is a fusible `affine.for`: SRAM loads/stores plus
/// scalar arithmetic, `iters` iterations. Under [`Backend::Fused`] the whole
/// loop runs inside one trace (no contention: single processor, nothing else
/// scheduled), so limits and cancellation must fire from *inside* the trace.
fn fused_loop(iters: i64) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b.create_mem(kinds::SRAM, &[iters as usize], 32, 2);
    let buf = b.alloc(mem, &[iters as usize], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let v = l.body_args[0];
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let one = ib.const_int(1, Type::I32);
        let (_, body, iv) = ib.affine_for(0, iters, 1);
        {
            let mut lb = OpBuilder::at_end(ib.module_mut(), body);
            let x = lb.affine_load(v, vec![iv]);
            let y = lb.addi(x, one);
            lb.affine_store(y, v, vec![iv]);
            lb.affine_yield();
        }
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

fn with_backend(limits: RunLimits, cancel: Option<CancelToken>, backend: Backend) -> SimOptions {
    SimOptions {
        backend,
        ..options(limits, cancel)
    }
}

#[test]
fn event_limit_fires_inside_fused_trace_with_progress() {
    // 4096 iterations × 2 timed accesses ≫ the 64-event budget: the limit
    // trips mid-trace. Bit identity extends to the error payload, so the
    // two backends must return *equal* errors, not merely the same kind.
    let m = fused_loop(4096);
    let lib = SimLibrary::standard();
    let limits = RunLimits {
        max_events: 64,
        ..RunLimits::default()
    };
    let fused = simulate_with(&m, &lib, &with_backend(limits, None, Backend::Fused)).unwrap_err();
    let interp = simulate_with(&m, &lib, &with_backend(limits, None, Backend::Interp)).unwrap_err();
    let SimError::Limit(l) = &fused else {
        panic!("expected Limit, got {fused}");
    };
    assert_eq!(l.kind, LimitKind::Events);
    assert!(l.progress.events > 64, "{:?}", l.progress);
    assert!(l.progress.ops > 0, "{:?}", l.progress);
    assert!(l.progress.cycles > 0, "{:?}", l.progress);
    assert_eq!(fused, interp);
}

#[test]
fn cycle_limit_fires_inside_fused_trace_with_progress() {
    let m = fused_loop(4096);
    let lib = SimLibrary::standard();
    let limits = RunLimits {
        max_cycles: 100,
        ..RunLimits::default()
    };
    let fused = simulate_with(&m, &lib, &with_backend(limits, None, Backend::Fused)).unwrap_err();
    let interp = simulate_with(&m, &lib, &with_backend(limits, None, Backend::Interp)).unwrap_err();
    let SimError::Limit(l) = &fused else {
        panic!("expected Limit, got {fused}");
    };
    assert_eq!(l.kind, LimitKind::Cycles);
    assert!(l.progress.cycles > 100, "{:?}", l.progress);
    assert!(l.progress.ops > 0, "{:?}", l.progress);
    assert_eq!(fused, interp);
}

#[test]
fn cancellation_is_observed_inside_fused_trace_with_progress() {
    // A pre-cancelled token is caught at the engine's first wake, before
    // any trace is entered — so to prove the *trace* polls the token, the
    // cancel must land mid-run, while execution is deep inside the fused
    // loop. The trace's wake/op epoch checks run on the same counter
    // cadence as the interpreter's, so the token is observed promptly and
    // the reported progress is nonzero.
    let m = fused_loop(50_000_000);
    let lib = SimLibrary::standard();
    let token = CancelToken::new();
    let remote = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        remote.cancel();
    });
    // Wall deadline as a backstop so a broken poll cannot hang CI.
    let err = simulate_with(
        &m,
        &lib,
        &with_backend(
            RunLimits {
                wall_deadline: Some(Duration::from_secs(60)),
                ..RunLimits::unlimited()
            },
            Some(token),
            Backend::Fused,
        ),
    )
    .unwrap_err();
    canceller.join().unwrap();
    let SimError::Cancelled(progress) = err else {
        panic!("expected Cancelled, got {err}");
    };
    assert!(progress.ops > 0, "{progress:?}");
    assert!(progress.events > 0, "{progress:?}");
    assert!(progress.cycles > 0, "{progress:?}");
}

#[test]
fn wall_deadline_fires_inside_fused_trace() {
    // Wall progress values depend on host timing, so only the fused run's
    // own shape is asserted (kind + nonzero progress), not cross-backend
    // equality.
    let m = fused_loop(50_000_000);
    let lib = SimLibrary::standard();
    let err = simulate_with(
        &m,
        &lib,
        &with_backend(
            RunLimits {
                wall_deadline: Some(Duration::from_millis(10)),
                ..RunLimits::unlimited()
            },
            None,
            Backend::Fused,
        ),
    )
    .unwrap_err();
    let SimError::Limit(l) = err else {
        panic!("expected Limit, got {err}");
    };
    assert_eq!(l.kind, LimitKind::WallClock);
    assert!(l.progress.ops > 0, "{:?}", l.progress);
}

#[test]
fn resume_restarts_wall_deadline() {
    // The wall clock is host time, not simulated state: a snapshot held on
    // disk for an hour must not have "used up" its deadline. Capture a
    // checkpoint, let real time pass beyond the deadline, then resume — the
    // deadline budget restarts at resume, so the run completes. (The old
    // behaviour double-counted pre-snapshot wall time, which this sleep
    // would trip.)
    use equeue_core::{CompiledModule, SimLibrary};
    let compiled = CompiledModule::compile(fused_loop(256), SimLibrary::standard()).unwrap();
    let snap = compiled
        .snapshot(&SimOptions {
            snapshot_at: Some(10),
            ..options(RunLimits::unlimited(), None)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let report = compiled
        .resume(
            &snap,
            &options(
                RunLimits {
                    wall_deadline: Some(Duration::from_millis(250)),
                    ..RunLimits::unlimited()
                },
                None,
            ),
        )
        .unwrap();
    assert!(report.cycles > 10);
}

#[test]
fn resume_continues_cycle_and_event_budgets() {
    // Unlike the wall clock, cycle/event budgets are *simulated* state:
    // they meter the whole logical run, so a resumed window inherits the
    // snapshot's counters. Resuming under a budget the full run would blow
    // must fail exactly like the uninterrupted limited run — same error,
    // same progress payload (bit identity extends to errors).
    use equeue_core::{simulate, CompiledModule, SimLibrary};
    let full = simulate(&fused_loop(4096)).unwrap();
    let compiled = CompiledModule::compile(fused_loop(4096), SimLibrary::standard()).unwrap();
    for (limits, kind) in [
        (
            RunLimits {
                max_cycles: full.cycles / 2,
                ..RunLimits::default()
            },
            LimitKind::Cycles,
        ),
        (
            RunLimits {
                max_events: full.events_processed / 2,
                ..RunLimits::default()
            },
            LimitKind::Events,
        ),
    ] {
        let uninterrupted = compiled.simulate(&options(limits, None)).unwrap_err();
        // Cut well before the budget trips, so the limited portion replays
        // inside the resumed window.
        let snap = compiled
            .snapshot(&SimOptions {
                snapshot_at: Some(10),
                ..options(RunLimits::unlimited(), None)
            })
            .unwrap();
        let resumed = compiled.resume(&snap, &options(limits, None)).unwrap_err();
        let SimError::Limit(l) = &resumed else {
            panic!("expected Limit, got {resumed}");
        };
        assert_eq!(l.kind, kind);
        assert_eq!(uninterrupted, resumed, "{kind:?}");
        // And a budget sized for the whole run still completes on resume.
        let generous = RunLimits {
            max_cycles: full.cycles + 1,
            max_events: full.events_processed + 1,
            ..RunLimits::default()
        };
        let report = compiled.resume(&snap, &options(generous, None)).unwrap();
        assert_eq!(report.cycles, full.cycles);
    }
}

#[test]
fn limits_do_not_affect_short_runs() {
    // A run comfortably inside every budget completes normally.
    let m = long_ext_op(64);
    let lib = SimLibrary::standard();
    let report = simulate_with(
        &m,
        &lib,
        &options(
            RunLimits {
                max_cycles: 10_000,
                max_events: 10_000,
                max_live_tensor_bytes: 1 << 20,
                wall_deadline: Some(Duration::from_secs(30)),
            },
            Some(CancelToken::new()),
        ),
    )
    .unwrap();
    assert_eq!(report.cycles, 64);
}
