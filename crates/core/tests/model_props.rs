//! Property tests on the device models: schedule queues never double-book,
//! connection statistics conserve bytes, and signal combinators match a
//! reference evaluation over random dependency DAGs.

use equeue_core::{AccessKind, Connection, Machine, SignalTable, SramBehavior};
use equeue_dialect::ConnKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ports never serve two reservations at once: for any sequence of
    /// requests, per-port intervals are disjoint and starts never precede
    /// the request.
    #[test]
    fn memory_ports_never_double_book(
        requests in proptest::collection::vec((0u64..50, 1u64..10), 1..40),
        ports in 1usize..4,
    ) {
        let mut machine = Machine::new();
        let mem = machine.add_memory("SRAM", 1024, 32, 1, ports, Box::new(SramBehavior::default()));
        let mut granted: Vec<(u64, u64)> = vec![];
        for (start, dur) in requests {
            let (actual, finish) = machine.memory_mut(mem).reserve(start, dur);
            prop_assert!(actual >= start);
            prop_assert_eq!(finish, actual + dur);
            granted.push((actual, finish));
        }
        // Overlap count at any instant must not exceed the port count.
        let mut points: Vec<u64> = granted.iter().flat_map(|&(s, f)| [s, f]).collect();
        points.sort_unstable();
        points.dedup();
        for &t in &points {
            let live = granted.iter().filter(|&&(s, f)| s <= t && t < f).count();
            prop_assert!(live <= ports, "{live} live reservations on {ports} ports at t={t}");
        }
    }

    /// Connections conserve bytes in their statistics and never overlap
    /// transfers on one channel.
    #[test]
    fn connection_stats_conserve_bytes(
        requests in proptest::collection::vec((0u64..40, 1u64..64, any::<bool>()), 1..30),
        bw in 1u64..16,
        window in any::<bool>(),
    ) {
        let kind = if window { ConnKind::Window } else { ConnKind::Streaming };
        let mut conn = Connection::new("c".into(), kind, bw);
        let mut expect_read = 0u64;
        let mut expect_write = 0u64;
        for (start, bytes, is_read) in requests {
            let dir = if is_read { AccessKind::Read } else { AccessKind::Write };
            let (actual, finish) = conn.reserve(dir, start, bytes);
            prop_assert!(actual >= start);
            prop_assert_eq!(finish - actual, bytes.div_ceil(bw));
            if is_read {
                expect_read += bytes;
            } else {
                expect_write += bytes;
            }
        }
        let read: u64 =
            conn.transfers.iter().filter(|t| t.kind == AccessKind::Read).map(|t| t.bytes).sum();
        let write: u64 =
            conn.transfers.iter().filter(|t| t.kind == AccessKind::Write).map(|t| t.bytes).sum();
        prop_assert_eq!(read, expect_read);
        prop_assert_eq!(write, expect_write);
        // Per direction (or globally for Window), transfers are disjoint.
        let mut check = |dir: AccessKind| {
            let mut spans: Vec<(u64, u64)> = conn
                .transfers
                .iter()
                .filter(|t| kind == ConnKind::Window || t.kind == dir)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!("overlap: {w:?}"));
                }
            }
            Ok(())
        };
        prop_assert!(check(AccessKind::Read).is_ok());
        prop_assert!(check(AccessKind::Write).is_ok());
    }

    /// Random and/or combinator trees over leaf signals resolve exactly
    /// like a reference max/min evaluation — when resolutions arrive in
    /// time order, which is what the engine's scheduler guarantees (`or`
    /// fires at its first-*resolved* dependency; in time order that is the
    /// min-time one).
    #[test]
    fn signal_dags_match_reference(
        leaf_times in proptest::collection::vec(0u64..100, 2..8),
        // Each node: (is_and, dep_a, dep_b) indices into everything before.
        nodes in proptest::collection::vec((any::<bool>(), 0usize..6, 0usize..6), 1..8),
    ) {
        let mut table = SignalTable::new();
        let leaves: Vec<_> = leaf_times.iter().map(|_| table.fresh()).collect();

        // Build combinator nodes over earlier signals.
        let mut all = leaves.clone();
        let mut reference: Vec<Option<u64>> = leaf_times.iter().map(|&t| Some(t)).collect();
        let mut spec: Vec<(bool, usize, usize)> = vec![];
        for &(is_and, a, b) in &nodes {
            let a = a % all.len();
            let b = b % all.len();
            let sig = if is_and {
                table.new_and(&[all[a], all[b]])
            } else {
                table.new_or(&[all[a], all[b]])
            };
            all.push(sig);
            spec.push((is_and, a, b));
            reference.push(None);
        }

        // Resolve leaves in ascending time order (ties by index), exactly
        // as the engine's time-ordered scheduler would.
        let mut order: Vec<usize> = (0..leaves.len()).collect();
        order.sort_by_key(|&i| (leaf_times[i], i));
        for &i in &order {
            table.resolve(leaves[i], leaf_times[i], vec![]);
        }

        // Reference evaluation.
        for (i, &(is_and, a, b)) in spec.iter().enumerate() {
            let (ta, tb) = (reference[a].unwrap(), reference[b].unwrap());
            reference[leaves.len() + i] =
                Some(if is_and { ta.max(tb) } else { ta.min(tb) });
        }

        for (i, &sig) in all.iter().enumerate() {
            prop_assert!(table.is_resolved(sig), "signal {i} unresolved");
            prop_assert_eq!(table.resolve_time(sig).unwrap(), reference[i].unwrap(), "node {}", i);
        }
    }

    /// Even under adversarial (non-time-ordered) resolution, every
    /// combinator eventually resolves — no lost wakeups in the cascade.
    #[test]
    fn signal_dags_always_resolve(
        leaf_count in 2usize..8,
        nodes in proptest::collection::vec((any::<bool>(), 0usize..6, 0usize..6), 1..8),
        resolve_order in proptest::collection::vec(0usize..8, 8),
    ) {
        let mut table = SignalTable::new();
        let leaves: Vec<_> = (0..leaf_count).map(|_| table.fresh()).collect();
        let mut all = leaves.clone();
        for &(is_and, a, b) in &nodes {
            let a = a % all.len();
            let b = b % all.len();
            let sig = if is_and {
                table.new_and(&[all[a], all[b]])
            } else {
                table.new_or(&[all[a], all[b]])
            };
            all.push(sig);
        }
        let mut order: Vec<usize> = (0..leaf_count).collect();
        order.sort_by_key(|&i| resolve_order[i % resolve_order.len()]);
        for &i in &order {
            table.resolve(leaves[i], i as u64, vec![]);
        }
        for (i, &sig) in all.iter().enumerate() {
            prop_assert!(table.is_resolved(sig), "signal {i} unresolved");
        }
    }

    /// Buffer allocation never exceeds capacity and dealloc restores it.
    #[test]
    fn allocator_respects_capacity(
        sizes in proptest::collection::vec(1usize..32, 1..20),
        capacity in 32usize..128,
    ) {
        let mut machine = Machine::new();
        let mem = machine.add_memory("SRAM", capacity, 32, 1, 1, Box::new(SramBehavior::default()));
        let mut live: Vec<(equeue_core::BufId, usize)> = vec![];
        let mut used = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            match machine.alloc_buffer(mem, vec![sz], 4, true) {
                Ok(id) => {
                    used += sz;
                    prop_assert!(used <= capacity, "allocator over-committed");
                    live.push((id, sz));
                }
                Err(_) => {
                    prop_assert!(used + sz > capacity, "spurious allocation failure");
                }
            }
            // Free the oldest buffer every third step.
            if i % 3 == 2 {
                if let Some((id, sz)) = live.first().copied() {
                    machine.dealloc_buffer(id);
                    live.remove(0);
                    used -= sz;
                }
            }
        }
    }
}
