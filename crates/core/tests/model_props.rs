//! Property tests on the device models: schedule queues never double-book,
//! connection statistics conserve bytes, and signal combinators match a
//! reference evaluation over random dependency DAGs.
//!
//! Uses a deterministic xorshift generator instead of `proptest` — the
//! workspace carries no external dependencies. Each property is checked
//! over many seeded random cases; assertion messages include the inputs.

use equeue_core::{AccessKind, Connection, Machine, SignalTable, SramBehavior};
use equeue_dialect::ConnKind;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const CASES: usize = 64;

/// Ports never serve two reservations at once: for any sequence of
/// requests, per-port intervals are disjoint and starts never precede
/// the request.
#[test]
fn memory_ports_never_double_book() {
    let mut rng = Rng::new(0x9011A);
    for _ in 0..CASES {
        let ports = rng.range(1, 4) as usize;
        let n = rng.range(1, 40) as usize;
        let requests: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.range(0, 50), rng.range(1, 10)))
            .collect();
        let mut machine = Machine::new();
        let mem = machine.add_memory(
            "SRAM",
            1024,
            32,
            1,
            ports,
            Box::new(SramBehavior::default()),
        );
        let mut granted: Vec<(u64, u64)> = vec![];
        for &(start, dur) in &requests {
            let (actual, finish) = machine.memory_mut(mem).unwrap().reserve(start, dur);
            assert!(actual >= start, "requests = {requests:?}");
            assert_eq!(finish, actual + dur, "requests = {requests:?}");
            granted.push((actual, finish));
        }
        // Overlap count at any instant must not exceed the port count.
        let mut points: Vec<u64> = granted.iter().flat_map(|&(s, f)| [s, f]).collect();
        points.sort_unstable();
        points.dedup();
        for &t in &points {
            let live = granted.iter().filter(|&&(s, f)| s <= t && t < f).count();
            assert!(
                live <= ports,
                "{live} live reservations on {ports} ports at t={t}"
            );
        }
    }
}

/// Connections conserve bytes in their statistics and never overlap
/// transfers on one channel.
#[test]
fn connection_stats_conserve_bytes() {
    let mut rng = Rng::new(0xC023);
    for _ in 0..CASES {
        let bw = rng.range(1, 16);
        let window = rng.bool();
        let n = rng.range(1, 30) as usize;
        let requests: Vec<(u64, u64, bool)> = (0..n)
            .map(|_| (rng.range(0, 40), rng.range(1, 64), rng.bool()))
            .collect();
        let kind = if window {
            ConnKind::Window
        } else {
            ConnKind::Streaming
        };
        let mut conn = Connection::new("c".into(), kind, bw);
        let mut expect_read = 0u64;
        let mut expect_write = 0u64;
        for &(start, bytes, is_read) in &requests {
            let dir = if is_read {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let (actual, finish) = conn.reserve(dir, start, bytes);
            assert!(actual >= start, "requests = {requests:?}");
            assert_eq!(
                finish - actual,
                bytes.div_ceil(bw),
                "requests = {requests:?}"
            );
            if is_read {
                expect_read += bytes;
            } else {
                expect_write += bytes;
            }
        }
        let read: u64 = conn
            .transfers
            .iter()
            .filter(|t| t.kind == AccessKind::Read)
            .map(|t| t.bytes)
            .sum();
        let write: u64 = conn
            .transfers
            .iter()
            .filter(|t| t.kind == AccessKind::Write)
            .map(|t| t.bytes)
            .sum();
        assert_eq!(read, expect_read);
        assert_eq!(write, expect_write);
        // Per direction (or globally for Window), transfers are disjoint.
        let check = |dir: AccessKind| {
            let mut spans: Vec<(u64, u64)> = conn
                .transfers
                .iter()
                .filter(|t| kind == ConnKind::Window || t.kind == dir)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!("overlap: {w:?}"));
                }
            }
            Ok(())
        };
        assert!(check(AccessKind::Read).is_ok());
        assert!(check(AccessKind::Write).is_ok());
    }
}

/// Random and/or combinator trees over leaf signals resolve exactly
/// like a reference max/min evaluation — when resolutions arrive in
/// time order, which is what the engine's scheduler guarantees (`or`
/// fires at its first-*resolved* dependency; in time order that is the
/// min-time one).
#[test]
fn signal_dags_match_reference() {
    let mut rng = Rng::new(0xDA6);
    for _ in 0..CASES {
        let leaf_times: Vec<u64> = (0..rng.range(2, 8)).map(|_| rng.range(0, 100)).collect();
        let nodes: Vec<(bool, usize, usize)> = (0..rng.range(1, 8))
            .map(|_| {
                (
                    rng.bool(),
                    rng.range(0, 6) as usize,
                    rng.range(0, 6) as usize,
                )
            })
            .collect();

        let mut table = SignalTable::new();
        let leaves: Vec<_> = leaf_times.iter().map(|_| table.fresh()).collect();

        // Build combinator nodes over earlier signals.
        let mut all = leaves.clone();
        let mut reference: Vec<Option<u64>> = leaf_times.iter().map(|&t| Some(t)).collect();
        let mut spec: Vec<(bool, usize, usize)> = vec![];
        for &(is_and, a, b) in &nodes {
            let a = a % all.len();
            let b = b % all.len();
            let sig = if is_and {
                table.new_and(&[all[a], all[b]])
            } else {
                table.new_or(&[all[a], all[b]])
            };
            all.push(sig);
            spec.push((is_and, a, b));
            reference.push(None);
        }

        // Resolve leaves in ascending time order (ties by index), exactly
        // as the engine's time-ordered scheduler would.
        let mut order: Vec<usize> = (0..leaves.len()).collect();
        order.sort_by_key(|&i| (leaf_times[i], i));
        for &i in &order {
            table.resolve(leaves[i], leaf_times[i], vec![]);
        }

        // Reference evaluation.
        for (i, &(is_and, a, b)) in spec.iter().enumerate() {
            let (ta, tb) = (reference[a].unwrap(), reference[b].unwrap());
            reference[leaves.len() + i] = Some(if is_and { ta.max(tb) } else { ta.min(tb) });
        }

        for (i, &sig) in all.iter().enumerate() {
            assert!(table.is_resolved(sig), "signal {i} unresolved");
            assert_eq!(
                table.resolve_time(sig).unwrap(),
                reference[i].unwrap(),
                "node {i}: leaf_times = {leaf_times:?}, nodes = {nodes:?}"
            );
        }
    }
}

/// Even under adversarial (non-time-ordered) resolution, every
/// combinator eventually resolves — no lost wakeups in the cascade.
#[test]
fn signal_dags_always_resolve() {
    let mut rng = Rng::new(0xA1507);
    for _ in 0..CASES {
        let leaf_count = rng.range(2, 8) as usize;
        let nodes: Vec<(bool, usize, usize)> = (0..rng.range(1, 8))
            .map(|_| {
                (
                    rng.bool(),
                    rng.range(0, 6) as usize,
                    rng.range(0, 6) as usize,
                )
            })
            .collect();
        let resolve_order: Vec<usize> = (0..8).map(|_| rng.range(0, 8) as usize).collect();

        let mut table = SignalTable::new();
        let leaves: Vec<_> = (0..leaf_count).map(|_| table.fresh()).collect();
        let mut all = leaves.clone();
        for &(is_and, a, b) in &nodes {
            let a = a % all.len();
            let b = b % all.len();
            let sig = if is_and {
                table.new_and(&[all[a], all[b]])
            } else {
                table.new_or(&[all[a], all[b]])
            };
            all.push(sig);
        }
        let mut order: Vec<usize> = (0..leaf_count).collect();
        order.sort_by_key(|&i| resolve_order[i % resolve_order.len()]);
        for &i in &order {
            table.resolve(leaves[i], i as u64, vec![]);
        }
        for (i, &sig) in all.iter().enumerate() {
            assert!(table.is_resolved(sig), "signal {i} unresolved");
        }
    }
}

/// Buffer allocation never exceeds capacity and dealloc restores it.
#[test]
fn allocator_respects_capacity() {
    let mut rng = Rng::new(0xA110C);
    for _ in 0..CASES {
        let capacity = rng.range(32, 128) as usize;
        let sizes: Vec<usize> = (0..rng.range(1, 20))
            .map(|_| rng.range(1, 32) as usize)
            .collect();
        let mut machine = Machine::new();
        let mem = machine.add_memory(
            "SRAM",
            capacity,
            32,
            1,
            1,
            Box::new(SramBehavior::default()),
        );
        let mut live: Vec<(equeue_core::BufId, usize)> = vec![];
        let mut used = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            match machine.alloc_buffer(mem, vec![sz], 4, true) {
                Ok(id) => {
                    used += sz;
                    assert!(
                        used <= capacity,
                        "allocator over-committed: sizes = {sizes:?}"
                    );
                    live.push((id, sz));
                }
                Err(_) => {
                    assert!(
                        used + sz > capacity,
                        "spurious allocation failure: sizes = {sizes:?}"
                    );
                }
            }
            // Free the oldest buffer every third step.
            if i % 3 == 2 {
                if let Some((id, sz)) = live.first().copied() {
                    machine.dealloc_buffer(id);
                    live.remove(0);
                    used -= sz;
                }
            }
        }
    }
}
