//! Malformed-IR fuzzing: truncated and mutated textual programs must never
//! panic anywhere in parse → compile → simulate. Every failure has to
//! surface as a typed [`SimError`].
//!
//! The fuzzer is dependency-free: a xorshift64* PRNG drives byte-level and
//! line-level mutations of a small corpus of real programs. Each case runs
//! under tight [`RunLimits`] (plus a wall deadline) so that an accidentally
//! valid-but-huge program cannot hang the suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use equeue_core::{CompiledModule, RunLimits, SimLibrary, SimOptions};

/// Real programs the mutations start from. Diversity matters more than
/// size: each exercises a different dialect surface (launch bodies, affine
/// loops, arith, memcpy).
const CORPUS: &[&str] = &[
    r#"
%kernel = "equeue.create_proc"() {kind = "MAC"} : () -> !equeue.proc
%mem = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "SRAM", shape = [8]} : () -> !equeue.mem
%buf = "equeue.alloc"(%mem) : (!equeue.mem) -> !equeue.buffer<4xi32>
%start = "equeue.control_start"() : () -> !equeue.signal
%done = "equeue.launch"(%start, %kernel, %buf) ({
^bb0(%b: !equeue.buffer<4xi32>):
  %data = "equeue.read"(%b) {segments = [1, 0, 0]} : (!equeue.buffer<4xi32>) -> tensor<4xi32>
  "equeue.return"() : () -> ()
}) : (!equeue.signal, !equeue.proc, !equeue.buffer<4xi32>) -> !equeue.signal
"equeue.await"(%done) : (!equeue.signal) -> ()
"#,
    r#"
%c0 = "arith.constant"() {value = 0} : () -> i32
%c1 = "arith.constant"() {value = 1} : () -> i32
%sum = "arith.addi"(%c0, %c1) : (i32, i32) -> i32
"affine.for"() ({
^bb0(%i: index):
  %sq = "arith.muli"(%sum, %sum) : (i32, i32) -> i32
  "affine.yield"() : () -> ()
}) {lower = 0, step = 1, upper = 4} : () -> ()
"#,
    r#"
%p = "equeue.create_proc"() {kind = "ARM"} : () -> !equeue.proc
%sram = "equeue.create_mem"() {banks = 2, data_bits = 32, kind = "SRAM", shape = [64]} : () -> !equeue.mem
%dram = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "DRAM", shape = [256]} : () -> !equeue.mem
%a = "equeue.alloc"(%dram) : (!equeue.mem) -> !equeue.buffer<16xi32>
%b = "equeue.alloc"(%sram) : (!equeue.mem) -> !equeue.buffer<16xi32>
%s = "equeue.control_start"() : () -> !equeue.signal
%d = "equeue.memcpy"(%s, %a, %b) : (!equeue.signal, !equeue.buffer<16xi32>, !equeue.buffer<16xi32>) -> !equeue.signal
"equeue.await"(%d) : (!equeue.signal) -> ()
"#,
    r#"%c = "arith.constant"() {value = 3} : () -> i32
"#,
];

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One random mutation of `text`. Mixes byte-level noise (flips, inserts,
/// truncation) with structure-aware edits (line shuffles, token swaps) so
/// both the lexer and the parser/verifier see hostile input.
fn mutate(rng: &mut Rng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.below(8) {
        // Truncate at a random byte.
        0 => {
            let at = rng.below(bytes.len() + 1);
            bytes.truncate(at);
        }
        // Flip a random byte.
        1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a random byte with a printable character.
        2 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = b' ' + (rng.below(95) as u8);
            }
        }
        // Insert a structurally interesting token.
        3 => {
            const TOKENS: &[&str] = &[
                "(",
                ")",
                "{",
                "}",
                "[",
                "]",
                "%",
                "\"",
                "^bb0",
                "->",
                ":",
                ",",
                "!equeue.mem",
                "tensor<",
                "-9999999999999999999",
                "= [",
            ];
            let tok = TOKENS[rng.below(TOKENS.len())];
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, tok.bytes());
        }
        // Delete a random line.
        4 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(rng.below(lines.len()));
            }
            bytes = lines.join("\n").into_bytes();
        }
        // Duplicate a random line (re-defines SSA values, doubles returns).
        5 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let at = rng.below(lines.len());
                lines.insert(at, lines[at]);
            }
            bytes = lines.join("\n").into_bytes();
        }
        // Swap two lines (use-before-def, terminator in the middle).
        6 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = rng.below(lines.len());
                let b = rng.below(lines.len());
                lines.swap(a, b);
            }
            bytes = lines.join("\n").into_bytes();
        }
        // Mangle a number: attribute and shape bounds checking.
        _ => {
            if let Some(at) = bytes.iter().position(|b| b.is_ascii_digit()) {
                const REPL: &[&str] = &["0", "-1", "18446744073709551615", "9223372036854775807"];
                let r = REPL[rng.below(REPL.len())];
                bytes.splice(at..at + 1, r.bytes());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn tight_options() -> SimOptions {
    SimOptions {
        trace: false,
        limits: RunLimits {
            max_cycles: 200_000,
            max_events: 200_000,
            max_live_tensor_bytes: 16 << 20,
            wall_deadline: Some(Duration::from_millis(500)),
        },
        cancel: None,
        ..Default::default()
    }
}

/// Feeds ≥1k truncated/mutated programs through the full pipeline. A panic
/// anywhere (parser, layout prepass, engine) fails the test with the
/// offending case number and input so it can be replayed.
#[test]
fn mutated_ir_never_panics() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut parsed_ok = 0usize;
    let mut simulated_ok = 0usize;

    for case in 0..1500 {
        let base = CORPUS[rng.below(CORPUS.len())];
        // Stack 1–4 mutations so errors compound.
        let mut text = base.to_string();
        for _ in 0..(1 + rng.below(4)) {
            text = mutate(&mut rng, &text);
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match CompiledModule::compile_text(&text, SimLibrary::standard()) {
                Ok(compiled) => {
                    let simulated = compiled.simulate(&tight_options()).is_ok();
                    (true, simulated)
                }
                Err(_) => (false, false),
            }
        }));

        match outcome {
            Ok((compiled, simulated)) => {
                parsed_ok += usize::from(compiled);
                simulated_ok += usize::from(simulated);
            }
            Err(_) => panic!("fuzz case {case} panicked on input:\n{text}"),
        }
    }

    // Sanity: the mutator must not be so destructive that nothing survives —
    // otherwise the engine paths were never exercised.
    assert!(parsed_ok > 10, "only {parsed_ok} cases compiled");
    assert!(simulated_ok > 5, "only {simulated_ok} cases simulated");
}

/// Pure truncation sweep: every prefix of every corpus program must parse
/// or fail cleanly. Catches end-of-input handling bugs in the lexer.
#[test]
fn truncated_ir_never_panics() {
    for (i, base) in CORPUS.iter().enumerate() {
        for at in 0..base.len() {
            if !base.is_char_boundary(at) {
                continue;
            }
            let text = &base[..at];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Ok(c) = CompiledModule::compile_text(text, SimLibrary::standard()) {
                    let _ = c.simulate(&tight_options());
                }
            }));
            assert!(
                outcome.is_ok(),
                "corpus {i} truncated at byte {at} panicked:\n{text}"
            );
        }
    }
}
