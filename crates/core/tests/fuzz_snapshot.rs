//! Snapshot-corpus fuzzing: mutated and truncated snapshot byte streams
//! must never panic anywhere in `decode → resume`. Every failure has to
//! surface as a typed [`SimError::Snapshot`].
//!
//! The fuzzer is dependency-free: a xorshift64* PRNG drives byte-level
//! mutations of real encoded snapshots captured from small programs. The
//! wire format carries a trailing checksum, so almost every mutation must
//! be rejected at decode; the rare survivor (a no-op mutation) must still
//! resume cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use equeue_core::{CompiledModule, SimError, SimLibrary, SimOptions, SimReport, Snapshot};
use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A compute-only program: one MAC unit stepping through `mac` ext-ops.
fn mac_chain(n: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let l = b.launch(start, pe, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        for _ in 0..n {
            ib.ext_op("mac", vec![], vec![]);
        }
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// A memory-touching program: an affine loop doubling a register buffer
/// in place (frames, loop state, and tensors all land in the snapshot).
fn affine_double(n: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::ARM_R5);
    let mem = b.create_mem(kinds::SRAM, &[n], 32, 1);
    let buf = b.alloc(mem, &[n], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let v = l.body_args[0];
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let (_, bi, i) = ib.affine_for(0, n as i64, 1);
        {
            let mut lb = OpBuilder::at_end(ib.module_mut(), bi);
            let x = lb.affine_load(v, vec![i]);
            let y = lb.addi(x, x);
            lb.affine_store(y, v, vec![i]);
            lb.affine_yield();
        }
        let mut ib = OpBuilder::at_end(&mut m, l.body);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// Captures a mid-run snapshot of `module` and returns the compiled
/// handle plus the snapshot's canonical encoding.
fn seed(module: Module, cut: u64) -> (CompiledModule, Vec<u8>) {
    let compiled =
        CompiledModule::compile(module, SimLibrary::standard()).expect("corpus module compiles");
    let snap = compiled
        .snapshot(&SimOptions {
            trace: false,
            snapshot_at: Some(cut),
            ..Default::default()
        })
        .expect("corpus snapshot captures");
    let bytes = snap.encode();
    (compiled, bytes)
}

/// One random mutation of an encoded snapshot: truncation, bit flips,
/// overwrites, splices, and region zeroing — hostile input for every
/// layer of the decoder (header, sections, checksum).
fn mutate(rng: &mut Rng, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.below(6) {
        // Truncate at a random byte (including 0 and full length).
        0 => {
            let at = rng.below(bytes.len() + 1);
            bytes.truncate(at);
        }
        // Flip a random bit.
        1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a random byte (length-prefix and tag corruption).
        2 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = rng.next() as u8;
            }
        }
        // Splice a burst of random bytes in place.
        3 => {
            let at = rng.below(bytes.len() + 1);
            let burst: Vec<u8> = (0..1 + rng.below(16)).map(|_| rng.next() as u8).collect();
            bytes.splice(at..at, burst);
        }
        // Zero a region (huge-length and null-tag paths).
        4 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                let end = (at + 1 + rng.below(32)).min(bytes.len());
                bytes[at..end].fill(0);
            }
        }
        // Saturate a region with 0xFF (max-length allocation guards).
        _ => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                let end = (at + 1 + rng.below(32)).min(bytes.len());
                bytes[at..end].fill(0xFF);
            }
        }
    }
    bytes
}

/// Runs one hostile byte stream through `decode → resume`. Returns an
/// error string when the case panicked or produced an untyped failure.
fn drive(compiled: &CompiledModule, bytes: &[u8]) -> Result<DecodeOutcome, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let opts = SimOptions {
            trace: false,
            ..Default::default()
        };
        match Snapshot::decode(bytes) {
            Ok(snap) => DecodeStep::Decoded(compiled.resume(&snap, &opts)),
            Err(e) => DecodeStep::Rejected(e),
        }
    }));
    match outcome {
        Err(_) => Err("panicked".into()),
        Ok(DecodeStep::Rejected(SimError::Snapshot(_))) => Ok(DecodeOutcome::RejectedTyped),
        Ok(DecodeStep::Rejected(e)) => Err(format!("decode failed with non-Snapshot error: {e}")),
        Ok(DecodeStep::Decoded(Ok(_))) => Ok(DecodeOutcome::Resumed),
        Ok(DecodeStep::Decoded(Err(SimError::Snapshot(_)))) => Ok(DecodeOutcome::RejectedTyped),
        Ok(DecodeStep::Decoded(Err(e))) => {
            Err(format!("resume failed with non-Snapshot error: {e}"))
        }
    }
}

enum DecodeStep {
    Decoded(Result<SimReport, SimError>),
    Rejected(SimError),
}

enum DecodeOutcome {
    RejectedTyped,
    Resumed,
}

/// Feeds ≥1k mutated snapshot streams through `decode → resume`. A panic
/// anywhere, or any failure that is not [`SimError::Snapshot`], fails the
/// test with the offending case number so it can be replayed.
#[test]
fn mutated_snapshots_never_panic() {
    let corpus = [seed(mac_chain(16), 5), seed(affine_double(8), 7)];
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut rejected = 0usize;
    let mut resumed = 0usize;
    for case in 0..1200 {
        let (compiled, base) = &corpus[rng.below(corpus.len())];
        // Stack 1–3 mutations so errors compound.
        let mut bytes = mutate(&mut rng, base);
        for _ in 0..rng.below(3) {
            bytes = mutate(&mut rng, &bytes);
        }
        match drive(compiled, &bytes) {
            Ok(DecodeOutcome::RejectedTyped) => rejected += 1,
            Ok(DecodeOutcome::Resumed) => resumed += 1,
            Err(why) => panic!("fuzz case {case}: {why} ({} bytes)", bytes.len()),
        }
    }
    // The checksum makes typed rejection the overwhelmingly common path;
    // the occasional no-op mutation resumes fine. Both must appear, or
    // the harness isn't exercising what it claims.
    assert!(rejected > 1000, "only {rejected} cases rejected");
    // `truncate(len)` and re-zeroing zero bytes leave the stream intact.
    assert!(resumed > 0, "no mutated stream survived to resume");
}

/// Pure truncation sweep: every prefix of a real snapshot must decode or
/// fail with a typed error. Catches end-of-input handling in the reader.
#[test]
fn truncated_snapshots_never_panic() {
    let (compiled, bytes) = seed(affine_double(8), 3);
    for at in 0..bytes.len() {
        if let Err(why) = drive(&compiled, &bytes[..at]) {
            panic!("snapshot truncated at byte {at}: {why}");
        }
    }
    // The untruncated stream is valid and resumes.
    assert!(matches!(
        drive(&compiled, &bytes),
        Ok(DecodeOutcome::Resumed)
    ));
}

/// Decoding a valid snapshot against the *wrong* module must be a typed
/// rejection at resume (the fingerprint check), never a panic.
#[test]
fn resume_against_wrong_module_is_typed() {
    let (_, bytes) = seed(mac_chain(16), 5);
    let other = CompiledModule::compile(affine_double(8), SimLibrary::standard())
        .expect("corpus module compiles");
    let snap = Snapshot::decode(&bytes).expect("valid stream decodes");
    match other.resume(
        &snap,
        &SimOptions {
            trace: false,
            ..Default::default()
        },
    ) {
        Err(SimError::Snapshot(msg)) => {
            assert!(
                msg.contains("fingerprint") || msg.contains("module"),
                "unhelpful mismatch message: {msg}"
            );
        }
        Err(e) => panic!("wrong-module resume failed with non-Snapshot error: {e}"),
        Ok(_) => panic!("wrong-module resume succeeded"),
    }
}
