//! The systolic-array generator (§VI-B).
//!
//! Emits an EQueue program modelling an `Ah×Aw` systolic array running a
//! convolution under the WS/IS/OS dataflows, mirroring the structure of the
//! paper's C++ generator: a `par_for` over the PE grid, a read stage at the
//! array's SRAM boundary, systolic passing between neighbours, and a write
//! stage back to SRAM (§VI-B-2/3).
//!
//! ## Fidelity
//!
//! The generated model works at *wave* granularity: each fold of the
//! mapped computation becomes, per PE, a one-cycle *skew* event (the
//! diagonal pipeline fill — each PE starts one cycle after its up/left
//! neighbours) followed by a *stream* macro-op covering the fold's steady
//! state. Boundary PEs perform real `equeue.read`/`equeue.write` on the
//! SRAMs through infinite-bandwidth connections so traffic and bandwidth
//! statistics are exact, while interior PEs run an opaque `equeue.op`.
//! This reproduces the analytical per-fold timing
//! `load + S + ru + cu − 1` exactly (see `scalesim`) at a simulation cost
//! of `O(folds · PEs)` events instead of `O(cycles · PEs)` — the
//! trade-off DESIGN.md documents for the 4,050-point sweep of Fig. 12.

use equeue_dialect::{kinds, ConnKind, ConvDims, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type, ValueId};
use equeue_passes::Dataflow;
use std::collections::HashMap;

/// Array geometry and dataflow choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicSpec {
    /// Array rows (`Ah`).
    pub rows: usize,
    /// Array columns (`Aw`).
    pub cols: usize,
    /// Dataflow.
    pub dataflow: Dataflow,
}

/// The generated program plus mapping metadata.
#[derive(Debug)]
pub struct SystolicProgram {
    /// The EQueue module, ready to simulate.
    pub module: Module,
    /// Fold counts `(Fr, Fc)`.
    pub folds: (usize, usize),
    /// Rows-mapped dimension `D1`.
    pub d1: usize,
    /// Columns-mapped dimension `D2`.
    pub d2: usize,
    /// Streaming length per fold.
    pub stream: usize,
}

impl SystolicProgram {
    /// The paper's loop-iteration count `⌈D1/Ah⌉·⌈D2/Aw⌉` (Fig. 12c–e).
    pub fn loop_iterations(&self) -> usize {
        self.folds.0 * self.folds.1
    }
}

/// `(D1, D2, stream, double)` for a dataflow, following §VI-E.
fn mapping(dims: ConvDims, df: Dataflow) -> (usize, usize, usize, bool) {
    let k = dims.fh * dims.fw * dims.c;
    let e = dims.eh() * dims.ew();
    match df {
        Dataflow::Ws => (k, dims.n, e, false),
        Dataflow::Is => (k, e, dims.n, false),
        Dataflow::Os => (dims.n, k, e, true),
    }
}

/// Generates the systolic-array EQueue program for `spec` × `dims`.
///
/// # Panics
///
/// Panics if the filter does not fit in the input or the array is empty.
///
/// # Examples
///
/// ```
/// use equeue_gen::{generate_systolic, SystolicSpec};
/// use equeue_passes::Dataflow;
/// use equeue_dialect::ConvDims;
/// use equeue_core::simulate;
///
/// let spec = SystolicSpec { rows: 4, cols: 4, dataflow: Dataflow::Ws };
/// let prog = generate_systolic(&spec, ConvDims::square(8, 2, 3, 1));
/// let report = simulate(&prog.module).unwrap();
/// assert!(report.cycles > 0);
/// ```
pub fn generate_systolic(spec: &SystolicSpec, dims: ConvDims) -> SystolicProgram {
    assert!(spec.rows > 0 && spec.cols > 0, "array must be non-empty");
    assert!(
        dims.fh <= dims.h && dims.fw <= dims.w,
        "filter must fit in the input"
    );
    let (d1, d2, stream, double) = mapping(dims, spec.dataflow);
    let fr = d1.div_ceil(spec.rows);
    let fc = d2.div_ceil(spec.cols);
    let stream_cycles = if double { 2 * stream } else { stream } as i64;

    let mut module = Module::new();
    let top = module.top_block();

    // ---- structure specification (§VI-B) --------------------------------
    // Distinct (ru, cu) pairs across folds (full folds plus remainders).
    let used = |dim: usize, avail: usize, idx: usize| (dim - idx * avail).min(avail);
    let mut load_shapes: Vec<usize> = vec![];
    for fi in 0..fr {
        for fj in 0..fc {
            let sz = used(d1, spec.rows, fi) * used(d2, spec.cols, fj);
            if !load_shapes.contains(&sz) {
                load_shapes.push(sz);
            }
        }
    }
    let max_ru = spec.rows.min(d1);
    let max_cu = spec.cols.min(d2);
    // Stationary buffers live on their own SRAM; stream sources on another;
    // ofmap on a third — mirroring the paper's separate ifmap/weight/ofmap
    // SRAM regions (Fig. 8).
    let stationary_capacity: usize = load_shapes.iter().sum::<usize>().max(1);
    let stream_capacity = (max_ru * stream).max(1);
    // Drain sizes: WS/IS stream their outputs continuously (stream
    // elements per column per fold); OS drains the ru accumulated outputs
    // per column after the fold, so remainder folds drain fewer.
    let mut drain_sizes: Vec<usize> = vec![];
    for fi in 0..fr {
        let sz = match spec.dataflow {
            Dataflow::Os => used(d1, spec.rows, fi),
            _ => stream,
        };
        if !drain_sizes.contains(&sz) {
            drain_sizes.push(sz);
        }
    }
    let ofmap_capacity = (max_cu * drain_sizes.iter().sum::<usize>().max(1)).max(1);

    let mut b = OpBuilder::at_end(&mut module, top);
    let kernel = b.create_proc(kinds::ARM_R5);
    let stationary_sram = b.create_mem(kinds::SRAM, &[stationary_capacity], 32, spec.cols as u32);
    let stream_sram = {
        // One port per row so boundary PEs stream in parallel; single bank
        // so one row's stream is one element per cycle.
        let v = b
            .op("equeue.create_mem")
            .attr("kind", kinds::SRAM)
            .attr("shape", vec![stream_capacity as i64])
            .attr("data_bits", 32i64)
            .attr("banks", 1i64)
            .attr("ports", (max_ru + max_cu).max(1) as i64)
            .result(Type::Mem)
            .finish_value();
        v
    };
    let ofmap_sram = {
        let v = b
            .op("equeue.create_mem")
            .attr("kind", kinds::SRAM)
            .attr("shape", vec![ofmap_capacity as i64])
            .attr("data_bits", 32i64)
            .attr("banks", 1i64)
            .attr("ports", max_cu.max(1) as i64)
            .result(Type::Mem)
            .finish_value();
        v
    };
    let conn_in = b.create_connection(ConnKind::Streaming, 0);
    let conn_out = b.create_connection(ConnKind::Streaming, 0);

    // PE grid + per-column store units.
    let mut pes: Vec<Vec<ValueId>> = vec![];
    for _i in 0..max_ru {
        let mut row = vec![];
        for _j in 0..max_cu {
            row.push(b.create_proc(kinds::MAC));
        }
        pes.push(row);
    }
    let stores: Vec<ValueId> = (0..max_cu).map(|_| b.create_proc(kinds::GENERIC)).collect();

    // Group everything under one composite, with names, as in Fig. 2.
    {
        let mut names: Vec<String> = vec![
            "Kernel".into(),
            "StationarySRAM".into(),
            "StreamSRAM".into(),
            "OfmapSRAM".into(),
        ];
        let mut comps = vec![kernel, stationary_sram, stream_sram, ofmap_sram];
        for (i, row) in pes.iter().enumerate() {
            for (j, &pe) in row.iter().enumerate() {
                names.push(format!("PE{i}_{j}"));
                comps.push(pe);
            }
        }
        for (j, &s) in stores.iter().enumerate() {
            names.push(format!("Store{j}"));
            comps.push(s);
        }
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        b.create_comp(&name_refs, comps);
    }

    // Buffers.
    let mut load_bufs: HashMap<usize, ValueId> = HashMap::new();
    for &sz in &load_shapes {
        let buf = b.alloc(stationary_sram, &[sz], Type::I32);
        load_bufs.insert(sz, buf);
    }
    let row_bufs: Vec<ValueId> = (0..max_ru)
        .map(|_| b.alloc(stream_sram, &[stream.max(1)], Type::I32))
        .collect();
    let mut col_bufs: HashMap<usize, Vec<ValueId>> = HashMap::new();
    for &sz in &drain_sizes {
        let bufs = (0..max_cu)
            .map(|_| b.alloc(ofmap_sram, &[sz.max(1)], Type::I32))
            .collect();
        col_bufs.insert(sz, bufs);
    }

    // ---- control flow: folds of load → skewed stream → drain ------------
    let mut prev_done = b.control_start();
    for fi in 0..fr {
        for fj in 0..fc {
            let ru = used(d1, spec.rows, fi);
            let cu = used(d2, spec.cols, fj);

            // Stationary load on the kernel processor (WS/IS read the
            // stationary operand from SRAM; OS resets output registers).
            let load = b.launch(prev_done, kernel, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), load.body);
                if spec.dataflow == Dataflow::Os {
                    let cycles = (ru * cu).div_ceil(spec.cols) as i64;
                    ib.op("equeue.op")
                        .attr("signature", "reset_acc")
                        .attr("cycles", cycles)
                        .finish();
                } else {
                    let buf = load_bufs[&(ru * cu)];
                    ib.read(buf, None);
                }
                ib.ret(vec![]);
            }
            b = OpBuilder::at_end(&mut module, top);
            let load_done = load.done;

            // Skewed start: PE(i,j) begins one cycle after its up/left
            // neighbours (pipeline fill), then streams the fold.
            let mut skew_done: Vec<Vec<Option<ValueId>>> = vec![vec![None; cu]; ru];
            let mut work_done: Vec<ValueId> = vec![];
            let mut bottom_work: Vec<Option<ValueId>> = vec![None; cu];
            for i in 0..ru {
                for j in 0..cu {
                    let filled = |o: Option<ValueId>| match o {
                        Some(v) => v,
                        None => unreachable!("the wavefront fills earlier PEs first"),
                    };
                    let dep = match (i, j) {
                        (0, 0) => load_done,
                        (0, _) => filled(skew_done[0][j - 1]),
                        (_, 0) => filled(skew_done[i - 1][0]),
                        _ => b.control_and(vec![
                            filled(skew_done[i - 1][j]),
                            filled(skew_done[i][j - 1]),
                        ]),
                    };
                    let skew = b.launch(dep, pes[i][j], &[], vec![]);
                    {
                        let mut ib = OpBuilder::at_end(b.module_mut(), skew.body);
                        ib.op("equeue.op")
                            .attr("signature", "skew")
                            .attr("cycles", 1i64)
                            .finish();
                        ib.ret(vec![]);
                    }
                    b = OpBuilder::at_end(&mut module, top);
                    skew_done[i][j] = Some(skew.done);

                    let work = b.launch(skew.done, pes[i][j], &[], vec![]);
                    {
                        let mut ib = OpBuilder::at_end(b.module_mut(), work.body);
                        let boundary_read =
                            j == 0 || (spec.dataflow == Dataflow::Os && i == 0 && j > 0);
                        if boundary_read {
                            // Boundary PEs perform the fold's real SRAM
                            // stream (ifmap from the left edge; for OS,
                            // weights also enter along the top edge) …
                            let buf = if j == 0 { row_bufs[i] } else { row_bufs[0] };
                            ib.read(buf, Some(conn_in));
                            // … plus the rest of the fold's compute when
                            // the stream is longer than the buffer (OS
                            // streams two operands per accumulation).
                            let remaining = stream_cycles - stream.max(1) as i64;
                            if remaining > 0 {
                                ib.op("equeue.op")
                                    .attr("signature", "stream")
                                    .attr("cycles", remaining)
                                    .finish();
                            }
                        } else {
                            ib.op("equeue.op")
                                .attr("signature", "stream")
                                .attr("cycles", stream_cycles)
                                .finish();
                        }
                        ib.ret(vec![]);
                    }
                    b = OpBuilder::at_end(&mut module, top);
                    work_done.push(work.done);
                    if i == ru - 1 {
                        bottom_work[j] = Some(work.done);
                    }
                }
            }

            // Per-column drain to the ofmap SRAM. WS/IS stores overlap the
            // stream (the store unit follows PE(ru-1, j)'s pipeline); the
            // OS drain starts when the bottom PE finishes accumulating.
            let drain_sz = match spec.dataflow {
                Dataflow::Os => ru,
                _ => stream,
            };
            let mut store_done: Vec<ValueId> = vec![];
            for (j, &store) in stores.iter().enumerate().take(cu) {
                let filled = |o: Option<ValueId>| match o {
                    Some(v) => v,
                    None => unreachable!("the wavefront covered every column"),
                };
                let dep = match spec.dataflow {
                    Dataflow::Os => filled(bottom_work[j]),
                    _ => filled(skew_done[ru - 1][j]),
                };
                let zero = b
                    .op("arith.constant")
                    .attr("value", 0i64)
                    .result(Type::I32)
                    .finish_value();
                let st = b.launch(dep, store, &[], vec![]);
                {
                    let mut ib = OpBuilder::at_end(b.module_mut(), st.body);
                    ib.write(zero, col_bufs[&drain_sz][j], Some(conn_out));
                    ib.ret(vec![]);
                }
                b = OpBuilder::at_end(&mut module, top);
                store_done.push(st.done);
            }

            let mut all = work_done;
            all.extend(store_done);
            prev_done = b.control_and(all);
        }
    }
    b.await_all(vec![prev_done]);

    SystolicProgram {
        module,
        folds: (fr, fc),
        d1,
        d2,
        stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::standard_registry;
    use equeue_ir::verify_module;
    use scalesim_shim::analytical_cycles;

    /// Local mirror of the scalesim per-fold formula so this crate's tests
    /// do not depend on the baseline crate (the bench crate cross-checks
    /// the real one).
    mod scalesim_shim {
        use super::*;
        pub fn analytical_cycles(spec: &SystolicSpec, dims: ConvDims) -> u64 {
            let (d1, d2, stream, double) = super::mapping(dims, spec.dataflow);
            let s = if double { 2 * stream } else { stream } as u64;
            let used = |dim: usize, avail: usize, idx: usize| (dim - idx * avail).min(avail);
            let mut cycles = 0;
            for fi in 0..d1.div_ceil(spec.rows) {
                for fj in 0..d2.div_ceil(spec.cols) {
                    let ru = used(d1, spec.rows, fi) as u64;
                    let cu = used(d2, spec.cols, fj) as u64;
                    let load = (ru * cu).div_ceil(spec.cols as u64);
                    let drain = if double { ru } else { 0 };
                    cycles += load + s + ru + cu - 1 + drain;
                }
            }
            cycles
        }
    }

    #[test]
    fn verifies_and_simulates() {
        let spec = SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Ws,
        };
        let prog = generate_systolic(&spec, ConvDims::square(8, 2, 3, 1));
        verify_module(&prog.module, &standard_registry()).unwrap();
        let report = simulate(&prog.module).unwrap();
        assert!(report.cycles > 0);
        assert_eq!(prog.folds, (3, 1));
        assert_eq!(prog.loop_iterations(), 3);
    }

    #[test]
    fn matches_analytical_model_ws() {
        for hw in [4usize, 8, 16] {
            let spec = SystolicSpec {
                rows: 4,
                cols: 4,
                dataflow: Dataflow::Ws,
            };
            let dims = ConvDims::square(hw, 2, 3, 2);
            let prog = generate_systolic(&spec, dims);
            let report = simulate(&prog.module).unwrap();
            let expect = analytical_cycles(&spec, dims);
            assert_eq!(report.cycles, expect, "hw={hw}");
        }
    }

    #[test]
    fn matches_analytical_model_is() {
        let spec = SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Is,
        };
        let dims = ConvDims::square(8, 2, 3, 4);
        let prog = generate_systolic(&spec, dims);
        let report = simulate(&prog.module).unwrap();
        assert_eq!(report.cycles, analytical_cycles(&spec, dims));
    }

    #[test]
    fn close_to_analytical_model_os() {
        let spec = SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Os,
        };
        let dims = ConvDims::square(8, 2, 3, 4);
        let prog = generate_systolic(&spec, dims);
        let report = simulate(&prog.module).unwrap();
        let expect = analytical_cycles(&spec, dims);
        let err = (report.cycles as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.05, "got {} expected {expect}", report.cycles);
    }

    #[test]
    fn sram_traffic_counted() {
        let spec = SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Ws,
        };
        let dims = ConvDims::square(8, 2, 3, 1);
        let prog = generate_systolic(&spec, dims);
        let report = simulate(&prog.module).unwrap();
        // Weight reads: sum over folds of ru*cu*4 bytes.
        let weight_bytes: u64 = report
            .memories
            .iter()
            .filter(|m| m.name == "StationarySRAM")
            .map(|m| m.bytes_read)
            .sum();
        // K=12 → folds of ru=4,4,4 with cu=1: 12 elems * 4 B.
        assert_eq!(weight_bytes, 48);
        // Ofmap writes: E*cu per fold = 49*1*3 folds * 4 B.
        let ofmap = report.memory_named("OfmapSRAM").unwrap();
        assert_eq!(ofmap.bytes_written, (49 * 3 * 4) as u64);
        // Connections saw the same traffic with stats.
        assert_eq!(report.connections.len(), 2);
        assert!(report.connections[1].write.bytes > 0);
    }

    #[test]
    fn bigger_arrays_cut_cycles() {
        let dims = ConvDims::square(12, 3, 4, 8); // K = 36
        let small = SystolicSpec {
            rows: 2,
            cols: 2,
            dataflow: Dataflow::Ws,
        };
        let big = SystolicSpec {
            rows: 8,
            cols: 8,
            dataflow: Dataflow::Ws,
        };
        let cs = simulate(&generate_systolic(&small, dims).module)
            .unwrap()
            .cycles;
        let cb = simulate(&generate_systolic(&big, dims).module)
            .unwrap()
            .cycles;
        assert!(cb < cs, "big {cb} small {cs}");
    }
}
