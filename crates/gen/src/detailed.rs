//! Per-element systolic fidelity: the ablation counterpart to the
//! wave-granularity model in [`crate::systolic`].
//!
//! The paper's §VI-B generator models every cycle of every PE: each stream
//! element is read, multiplied-accumulated, and passed to the neighbour as
//! its own operation. This module emits that program shape — each PE's
//! per-fold work is an `affine.for` whose body costs one cycle per
//! element, with boundary PEs doing real indexed SRAM reads/writes — so
//! the two fidelities can be compared directly: identical cycle counts,
//! very different event counts (and simulation cost). DESIGN.md documents
//! why the Fig. 12 sweep uses the wave model.

use crate::systolic::{generate_systolic, SystolicProgram, SystolicSpec};
use equeue_dialect::{kinds, AffineBuilder, ConnKind, ConvDims, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type, ValueId};
use equeue_passes::Dataflow;

/// Generates the per-element (cycle-level) systolic program.
///
/// Semantically equivalent to [`generate_systolic`] — same mapping, folds,
/// and per-fold timing — but each stream element is an individual event.
///
/// # Panics
///
/// Panics if the filter does not fit in the input or the array is empty.
///
/// # Examples
///
/// ```
/// use equeue_gen::{generate_systolic, generate_systolic_detailed, SystolicSpec};
/// use equeue_passes::Dataflow;
/// use equeue_dialect::ConvDims;
/// use equeue_core::simulate;
///
/// let spec = SystolicSpec { rows: 2, cols: 2, dataflow: Dataflow::Ws };
/// let dims = ConvDims::square(5, 2, 1, 2);
/// let wave = simulate(&generate_systolic(&spec, dims).module).unwrap();
/// let detailed = simulate(&generate_systolic_detailed(&spec, dims).module).unwrap();
/// assert_eq!(wave.cycles, detailed.cycles);
/// assert!(detailed.ops_interpreted > wave.ops_interpreted);
/// ```
pub fn generate_systolic_detailed(spec: &SystolicSpec, dims: ConvDims) -> SystolicProgram {
    // Reuse the wave generator's mapping arithmetic for the metadata…
    let meta = generate_systolic(spec, dims);
    let (fr, fc) = meta.folds;
    let (d1, d2, stream) = (meta.d1, meta.d2, meta.stream);
    let double = spec.dataflow == Dataflow::Os;
    let per_elem_cycles: i64 = if double { 2 } else { 1 };

    // …then build the detailed module from scratch.
    let mut module = Module::new();
    let top = module.top_block();
    let used = |dim: usize, avail: usize, idx: usize| (dim - idx * avail).min(avail);
    let max_ru = spec.rows.min(d1);
    let max_cu = spec.cols.min(d2);

    let mut sizes = vec![];
    for fi in 0..fr {
        for fj in 0..fc {
            let sz = used(d1, spec.rows, fi) * used(d2, spec.cols, fj);
            if !sizes.contains(&sz) {
                sizes.push(sz);
            }
        }
    }
    let stationary_capacity: usize = sizes.iter().sum::<usize>().max(1);

    let mut b = OpBuilder::at_end(&mut module, top);
    let kernel = b.create_proc(kinds::ARM_R5);
    let stationary_sram = b.create_mem(kinds::SRAM, &[stationary_capacity], 32, spec.cols as u32);
    let stream_sram = b
        .op("equeue.create_mem")
        .attr("kind", kinds::SRAM)
        .attr("shape", vec![(max_ru * stream).max(1) as i64])
        .attr("data_bits", 32i64)
        .attr("banks", 1i64)
        .attr("ports", (max_ru + max_cu).max(1) as i64)
        .result(Type::Mem)
        .finish_value();
    let ofmap_sram = b
        .op("equeue.create_mem")
        .attr("kind", kinds::SRAM)
        .attr("shape", vec![(max_cu * stream.max(max_ru)).max(1) as i64])
        .attr("data_bits", 32i64)
        .attr("banks", 1i64)
        .attr("ports", max_cu.max(1) as i64)
        .result(Type::Mem)
        .finish_value();
    let conn_in = b.create_connection(ConnKind::Streaming, 0);
    let conn_out = b.create_connection(ConnKind::Streaming, 0);

    let mut pes: Vec<Vec<ValueId>> = vec![];
    for _ in 0..max_ru {
        pes.push((0..max_cu).map(|_| b.create_proc(kinds::MAC)).collect());
    }
    let stores: Vec<ValueId> = (0..max_cu).map(|_| b.create_proc(kinds::GENERIC)).collect();

    let mut load_bufs = std::collections::HashMap::new();
    for &sz in &sizes {
        load_bufs.insert(sz, b.alloc(stationary_sram, &[sz], Type::I32));
    }
    let row_bufs: Vec<ValueId> = (0..max_ru)
        .map(|_| b.alloc(stream_sram, &[stream.max(1)], Type::I32))
        .collect();
    let drain_elems = match spec.dataflow {
        Dataflow::Os => max_ru,
        _ => stream,
    };
    let col_bufs: Vec<ValueId> = (0..max_cu)
        .map(|_| b.alloc(ofmap_sram, &[drain_elems.max(1)], Type::I32))
        .collect();

    let mut prev_done = b.control_start();
    for fi in 0..fr {
        for fj in 0..fc {
            let ru = used(d1, spec.rows, fi);
            let cu = used(d2, spec.cols, fj);

            // Stationary load (same as the wave model).
            let load = b.launch(prev_done, kernel, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), load.body);
                if spec.dataflow == Dataflow::Os {
                    let cycles = (ru * cu).div_ceil(spec.cols) as i64;
                    ib.op("equeue.op")
                        .attr("signature", "reset_acc")
                        .attr("cycles", cycles)
                        .finish();
                } else {
                    ib.read(load_bufs[&(ru * cu)], None);
                }
                ib.ret(vec![]);
            }
            b = OpBuilder::at_end(&mut module, top);
            let load_done = load.done;

            let mut skew_done: Vec<Vec<Option<ValueId>>> = vec![vec![None; cu]; ru];
            let mut work_done: Vec<ValueId> = vec![];
            let mut bottom_work: Vec<Option<ValueId>> = vec![None; cu];
            for i in 0..ru {
                for j in 0..cu {
                    let filled = |o: Option<ValueId>| match o {
                        Some(v) => v,
                        None => unreachable!("the wavefront fills earlier PEs first"),
                    };
                    let dep = match (i, j) {
                        (0, 0) => load_done,
                        (0, _) => filled(skew_done[0][j - 1]),
                        (_, 0) => filled(skew_done[i - 1][0]),
                        _ => b.control_and(vec![
                            filled(skew_done[i - 1][j]),
                            filled(skew_done[i][j - 1]),
                        ]),
                    };
                    let skew = b.launch(dep, pes[i][j], &[], vec![]);
                    {
                        let mut ib = OpBuilder::at_end(b.module_mut(), skew.body);
                        ib.op("equeue.op")
                            .attr("signature", "skew")
                            .attr("cycles", 1i64)
                            .finish();
                        ib.ret(vec![]);
                    }
                    b = OpBuilder::at_end(&mut module, top);
                    skew_done[i][j] = Some(skew.done);

                    // Per-element work: a loop of `stream` iterations, one
                    // element each. Boundary PEs perform the real indexed
                    // SRAM read (1-cycle single-bank access), interior PEs
                    // a 1-cycle step op; OS costs two cycles per element
                    // (two operands enter per accumulation).
                    let boundary = j == 0 || (spec.dataflow == Dataflow::Os && i == 0);
                    let work =
                        b.launch(skew.done, pes[i][j], &[row_bufs[i.min(max_ru - 1)]], vec![]);
                    {
                        let mut ib = OpBuilder::at_end(b.module_mut(), work.body);
                        let (_, body, iv) = ib.affine_for(0, stream.max(1) as i64, 1);
                        {
                            let mut lb = OpBuilder::at_end(ib.module_mut(), body);
                            if boundary {
                                lb.read_indexed(work.body_args[0], vec![iv], Some(conn_in));
                                if double {
                                    lb.op("equeue.op")
                                        .attr("signature", "step")
                                        .attr("cycles", 1i64)
                                        .finish();
                                }
                            } else {
                                lb.op("equeue.op")
                                    .attr("signature", "step")
                                    .attr("cycles", per_elem_cycles)
                                    .finish();
                            }
                            lb.affine_yield();
                        }
                        let mut ib = OpBuilder::at_end(&mut module, work.body);
                        ib.ret(vec![]);
                    }
                    b = OpBuilder::at_end(&mut module, top);
                    work_done.push(work.done);
                    if i == ru - 1 {
                        bottom_work[j] = Some(work.done);
                    }
                }
            }

            // Per-element drain.
            let drain_sz = match spec.dataflow {
                Dataflow::Os => ru,
                _ => stream,
            };
            let mut store_done: Vec<ValueId> = vec![];
            for (j, &store) in stores.iter().enumerate().take(cu) {
                let filled = |o: Option<ValueId>| match o {
                    Some(v) => v,
                    None => unreachable!("the wavefront covered every column"),
                };
                let dep = match spec.dataflow {
                    Dataflow::Os => filled(bottom_work[j]),
                    _ => filled(skew_done[ru - 1][j]),
                };
                let st = b.launch(dep, store, &[col_bufs[j]], vec![]);
                {
                    let mut ib = OpBuilder::at_end(b.module_mut(), st.body);
                    let (_, body, iv) = ib.affine_for(0, drain_sz.max(1) as i64, 1);
                    {
                        let mut lb = OpBuilder::at_end(ib.module_mut(), body);
                        let zero = lb
                            .op("arith.constant")
                            .attr("value", 0i64)
                            .result(Type::I32)
                            .finish_value();
                        lb.write_indexed(zero, st.body_args[0], vec![iv], Some(conn_out));
                        lb.affine_yield();
                    }
                    let mut ib = OpBuilder::at_end(&mut module, st.body);
                    ib.ret(vec![]);
                }
                b = OpBuilder::at_end(&mut module, top);
                store_done.push(st.done);
            }

            let mut all = work_done;
            all.extend(store_done);
            prev_done = b.control_and(all);
        }
    }
    b.await_all(vec![prev_done]);

    SystolicProgram {
        module,
        folds: meta.folds,
        d1,
        d2,
        stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;

    #[test]
    fn fidelity_wave_equals_per_element_ws() {
        for (rows, hw, f, n) in [(2usize, 5usize, 2usize, 2usize), (4, 6, 2, 3)] {
            let spec = SystolicSpec {
                rows,
                cols: rows,
                dataflow: Dataflow::Ws,
            };
            let dims = ConvDims::square(hw, f, 1, n);
            let wave = simulate(&generate_systolic(&spec, dims).module).unwrap();
            let detailed = simulate(&generate_systolic_detailed(&spec, dims).module).unwrap();
            assert_eq!(wave.cycles, detailed.cycles, "rows={rows} hw={hw}");
        }
    }

    #[test]
    fn fidelity_wave_equals_per_element_is() {
        let spec = SystolicSpec {
            rows: 2,
            cols: 2,
            dataflow: Dataflow::Is,
        };
        let dims = ConvDims::square(4, 2, 1, 3);
        let wave = simulate(&generate_systolic(&spec, dims).module).unwrap();
        let detailed = simulate(&generate_systolic_detailed(&spec, dims).module).unwrap();
        assert_eq!(wave.cycles, detailed.cycles);
    }

    #[test]
    fn fidelity_per_element_costs_more_events() {
        let spec = SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Ws,
        };
        let dims = ConvDims::square(8, 2, 3, 2);
        let wave = simulate(&generate_systolic(&spec, dims).module).unwrap();
        let detailed = simulate(&generate_systolic_detailed(&spec, dims).module).unwrap();
        assert_eq!(wave.cycles, detailed.cycles);
        // The ablation's point: the wave model is far cheaper to simulate.
        assert!(
            detailed.ops_interpreted > 5 * wave.ops_interpreted,
            "detailed {} vs wave {}",
            detailed.ops_interpreted,
            wave.ops_interpreted
        );
        assert!(detailed.events_processed > wave.events_processed);
    }

    #[test]
    fn fidelity_traffic_matches_wave_model() {
        let spec = SystolicSpec {
            rows: 2,
            cols: 2,
            dataflow: Dataflow::Ws,
        };
        let dims = ConvDims::square(5, 2, 1, 2);
        let wave = simulate(&generate_systolic(&spec, dims).module).unwrap();
        let detailed = simulate(&generate_systolic_detailed(&spec, dims).module).unwrap();
        let sum = |r: &equeue_core::SimReport| {
            (
                r.memories.iter().map(|m| m.bytes_read).sum::<u64>(),
                r.memories.iter().map(|m| m.bytes_written).sum::<u64>(),
            )
        };
        assert_eq!(sum(&wave), sum(&detailed));
    }
}
