//! # equeue-gen — EQueue program generators
//!
//! The paper demonstrates the EQueue dialect with generators written
//! against the builder API (§VI-B): a systolic-array model swept over
//! dataflows and array shapes, and a Versal ACAP AI Engine FIR pipeline
//! built up through four design iterations (§VII). This crate implements
//! both, plus the Fig. 11 lowering-pipeline stage programs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod detailed;
mod fir;
mod pipeline;
pub mod scenarios;
mod systolic;

pub use detailed::generate_systolic_detailed;
pub use fir::{generate_fir, reference as fir_reference, FirCase, FirProgram, FirSpec};
pub use pipeline::{build_stage_program, Stage, StageProgram};
pub use systolic::{generate_systolic, SystolicProgram, SystolicSpec};
