//! The Fig. 11 lowering pipeline: one simulable program per stage.
//!
//! §VI-D's pipeline lowers a Linalg convolution progressively —
//! Linalg → Affine → Reassign → Systolic — and simulates at *every* stage,
//! trading accuracy for effort (Fig. 1). This module assembles each
//! stage's program from the reusable passes of `equeue-passes`:
//!
//! * **Linalg** — buffers placed on SRAM, the conv as one analytic op,
//!   wrapped in a launch on the kernel processor;
//! * **Affine** — `--convert-linalg-to-affine-loops` then
//!   `--equeue-read-write`: explicit loops with per-element SRAM traffic;
//! * **Reassign** — `--flatten-conv-loops` (dataflow-ordered),
//!   `--reassign-buffer` onto PE registers, with DMA `memcpy`s staging the
//!   stationary operands from SRAM;
//! * **Systolic** — the full PE-array model from
//!   [`generate_systolic`](crate::generate_systolic).

use crate::systolic::{generate_systolic, SystolicSpec};
use equeue_dialect::{kinds, AffineBuilder, ConvDims, EqueueBuilder, LinalgBuilder};
use equeue_ir::{Module, OpBuilder, PassManager, Type};
use equeue_passes::{
    AllocateMemory, ConvertLinalgToAffineLoops, Dataflow, EqueueReadWrite, FlattenConvLoops,
    ReassignBuffer, WrapInLaunch,
};

/// The four abstraction levels of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Whole-tensor analytic simulation.
    Linalg,
    /// Explicit affine loops with SRAM data movement.
    Affine,
    /// Flattened loops with register-resident operands.
    Reassign,
    /// The full systolic-array model.
    Systolic,
}

impl Stage {
    /// All four stages in pipeline order.
    pub fn all() -> [Stage; 4] {
        [
            Stage::Linalg,
            Stage::Affine,
            Stage::Reassign,
            Stage::Systolic,
        ]
    }

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Linalg => "Linalg",
            Stage::Affine => "Affine",
            Stage::Reassign => "Reassign",
            Stage::Systolic => "Systolic",
        }
    }
}

/// A stage program ready to simulate.
#[derive(Debug)]
pub struct StageProgram {
    /// The module.
    pub module: Module,
    /// Which stage it models.
    pub stage: Stage,
}

/// Builds the program for `stage` on a convolution of `dims`, mapped (at
/// the systolic stage) onto an `array.0 × array.1` grid with `dataflow`.
///
/// # Panics
///
/// Panics if a lowering pass fails (which would indicate a bug in the
/// pipeline composition).
///
/// # Examples
///
/// ```
/// use equeue_gen::{build_stage_program, Stage};
/// use equeue_dialect::ConvDims;
/// use equeue_passes::Dataflow;
/// use equeue_core::simulate;
///
/// let dims = ConvDims::square(6, 3, 3, 4);
/// let linalg = build_stage_program(Stage::Linalg, dims, (4, 4), Dataflow::Ws);
/// let affine = build_stage_program(Stage::Affine, dims, (4, 4), Dataflow::Ws);
/// let tl = simulate(&linalg.module).unwrap();
/// let ta = simulate(&affine.module).unwrap();
/// assert!(ta.cycles < tl.cycles); // runtime falls as lowering proceeds
/// ```
pub fn build_stage_program(
    stage: Stage,
    dims: ConvDims,
    array: (usize, usize),
    dataflow: Dataflow,
) -> StageProgram {
    if stage == Stage::Systolic {
        let spec = SystolicSpec {
            rows: array.0,
            cols: array.1,
            dataflow,
        };
        return StageProgram {
            module: generate_systolic(&spec, dims).module,
            stage,
        };
    }

    // Common front: structure + memref buffers + the Linalg op.
    let mut module = Module::new();
    let top = module.top_block();
    let capacity = dims.ifmap_elems() + dims.weight_elems() + dims.ofmap_elems();
    let mut b = OpBuilder::at_end(&mut module, top);
    let kernel = b.create_proc(kinds::ARM_R5);
    let sram = b.create_mem(kinds::SRAM, &[capacity], 32, 4);
    let dma = b.create_dma();
    b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
    let ifmap = b.memref_alloc(Type::memref(vec![dims.c, dims.h, dims.w], Type::I32));
    let weights = b.memref_alloc(Type::memref(
        vec![dims.n, dims.c, dims.fh, dims.fw],
        Type::I32,
    ));
    let ofmap = b.memref_alloc(Type::memref(vec![dims.n, dims.eh(), dims.ew()], Type::I32));
    b.linalg_conv2d(ifmap, weights, ofmap);

    let registry = equeue_dialect::standard_registry();
    let mut pm = PassManager::new(registry);
    pm.add(AllocateMemory::new(sram));
    match stage {
        Stage::Linalg => {
            pm.add(WrapInLaunch::new(kernel));
        }
        Stage::Affine => {
            pm.add(ConvertLinalgToAffineLoops)
                .add(EqueueReadWrite)
                .add(WrapInLaunch::new(kernel));
        }
        Stage::Reassign => {
            pm.add(ConvertLinalgToAffineLoops)
                .add(FlattenConvLoops::new(dataflow))
                .add(EqueueReadWrite)
                .add(WrapInLaunch::new(kernel));
        }
        Stage::Systolic => unreachable!(),
    }
    if let Err(e) = pm.run(&mut module) {
        unreachable!("pipeline must apply: {e}")
    }

    if stage == Stage::Reassign {
        reassign_to_registers(&mut module, dims, dma);
    }
    StageProgram { module, stage }
}

/// The Reassign step: stationary operands move into PE registers, staged
/// from SRAM by DMA copies chained ahead of the launch (§VI-D-2).
fn reassign_to_registers(module: &mut Module, dims: ConvDims, dma: equeue_ir::ValueId) {
    // Buffers after AllocateMemory are equeue.allocs in creation order:
    // ifmap, weights, ofmap.
    let allocs = module.find_all("equeue.alloc");
    let (sram_if, sram_w) = (module.result(allocs[0], 0), module.result(allocs[1], 0));

    let Some(launch) = module.find_first("equeue.launch") else {
        unreachable!("the lowered pipeline contains a launch")
    };
    let cap = dims.ifmap_elems() + dims.weight_elems();
    let mut b = OpBuilder::before(module, launch);
    let regs = b.create_mem(kinds::REGISTER, &[cap], 32, 1);
    let reg_if = b.alloc(regs, &[dims.c, dims.h, dims.w], Type::I32);
    let reg_w = b.alloc(regs, &[dims.n, dims.c, dims.fh, dims.fw], Type::I32);
    let start = b.control_start();
    let cp1 = b.memcpy(start, sram_if, reg_if, dma, None);
    let cp2 = b.memcpy(cp1, sram_w, reg_w, dma, None);
    module.set_operand(launch, 0, cp2);

    // Redirect in-launch reads from SRAM to the registers.
    ReassignBuffer::new(sram_if, reg_if).run_on(module);
    ReassignBuffer::new(sram_w, reg_w).run_on(module);
    // The memcpys must still read SRAM: restore their sources.
    let memcpys = module.find_all("equeue.memcpy");
    module.set_operand(memcpys[0], 1, sram_if);
    module.set_operand(memcpys[1], 1, sram_w);
}

trait RunOn {
    fn run_on(self, module: &mut Module);
}

impl RunOn for ReassignBuffer {
    fn run_on(mut self, module: &mut Module) {
        use equeue_ir::Pass;
        if let Err(e) = self.run(module) {
            unreachable!("reassign-buffer cannot fail: {e}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::standard_registry;
    use equeue_ir::verify_module;

    fn dims() -> ConvDims {
        ConvDims::square(6, 3, 3, 4)
    }

    #[test]
    fn all_stages_verify_and_simulate() {
        for stage in Stage::all() {
            let prog = build_stage_program(stage, dims(), (4, 4), Dataflow::Ws);
            verify_module(&prog.module, &standard_registry())
                .unwrap_or_else(|e| panic!("{stage:?}: {e}"));
            let report = simulate(&prog.module).unwrap_or_else(|e| panic!("{stage:?}: {e}"));
            assert!(report.cycles > 0, "{stage:?}");
        }
    }

    #[test]
    fn runtime_falls_along_the_pipeline() {
        // Fig. 11b: simulated cycles decrease monotonically with lowering.
        let mut last = u64::MAX;
        for stage in Stage::all() {
            let prog = build_stage_program(stage, dims(), (4, 4), Dataflow::Ws);
            let cycles = simulate(&prog.module).unwrap().cycles;
            assert!(cycles < last, "{stage:?}: {cycles} !< {last}");
            last = cycles;
        }
    }

    #[test]
    fn sram_bandwidth_grows_then_falls() {
        // Fig. 11c: SRAM read bandwidth grows from Linalg to Affine (data
        // movement becomes explicit) then falls at Reassign (registers).
        let get = |stage| {
            let prog = build_stage_program(stage, dims(), (4, 4), Dataflow::Ws);
            simulate(&prog.module).unwrap().read_bw_of_kind("SRAM")
        };
        let linalg = get(Stage::Linalg);
        let affine = get(Stage::Affine);
        let reassign = get(Stage::Reassign);
        assert!(affine > linalg, "affine {affine} !> linalg {linalg}");
        assert!(reassign < affine, "reassign {reassign} !< affine {affine}");
    }

    #[test]
    fn register_bandwidth_appears_at_reassign() {
        // Fig. 11c: register bandwidth is zero until the Reassign stage.
        let affine = build_stage_program(Stage::Affine, dims(), (4, 4), Dataflow::Ws);
        let ra = simulate(&affine.module).unwrap();
        assert_eq!(ra.read_bw_of_kind("Register"), 0.0);
        let reassign = build_stage_program(Stage::Reassign, dims(), (4, 4), Dataflow::Ws);
        let rr = simulate(&reassign.module).unwrap();
        assert!(rr.read_bw_of_kind("Register") > 0.0);
    }

    #[test]
    fn stages_share_the_first_three_for_all_dataflows() {
        // §VI-D: "The first three lowering stages are identical for
        // different dataflows, so they have the same bandwidth and
        // runtime." (Linalg and Affine don't depend on the dataflow at
        // all; Reassign differs only in loop order, not totals.)
        let a = simulate(&build_stage_program(Stage::Affine, dims(), (4, 4), Dataflow::Ws).module)
            .unwrap();
        let b = simulate(&build_stage_program(Stage::Affine, dims(), (4, 4), Dataflow::Os).module)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
    }
}
