//! The Versal ACAP AI Engine FIR case study (§VII).
//!
//! Reproduces the four design iterations of the paper's Xilinx AI Engine
//! FIR filter (32 complex asymmetric taps, 512 samples, 32-bit values):
//!
//! 1. **Case 1** — a single AI Engine using `mul4`/`mac4` intrinsics
//!    (8 MACs/cycle): analytically 16 cycles per 4 outputs → **2048**
//!    cycles (Xilinx's own simulator reports 2276, the difference being
//!    loop-control and synchronisation overheads EQueue does not model).
//! 2. **Case 2** — 16 cores pipelined with unlimited interconnect:
//!    15 cycles of warm-up plus 128 groups → **143** cycles.
//! 3. **Case 3** — 16 cores behind 32-bit AXI4-Stream connections
//!    (4 bytes/cycle): each stage stalls 3 of every 4 cycles; warm-up
//!    5·16−1 = 79 and **588** total.
//! 4. **Case 4** — 4 cores × 4 `mac4`s, balanced against the stream:
//!    no steady-state stalls, ≈538 cycles (Xilinx reports 539).
//!
//! The inter-core streams are modelled faithfully as EQueue constructs:
//! a DMA (`stream switch`) per hop moving 4-sample groups through a
//! `Streaming` connection, with the consuming core's `mac4` launches
//! depending on the arrival events.

use equeue_dialect::{kinds, ConnKind, EqueueBuilder};
use equeue_ir::{Module, OpBuilder, Type, ValueId};

/// Published reference cycle counts used for comparison in EXPERIMENTS.md.
pub mod reference {
    /// Xilinx AIE simulator, 1-core FIR (§VII-C).
    pub const XILINX_CASE1: u64 = 2276;
    /// Xilinx AIE simulator, 4-core FIR (§VII-F).
    pub const XILINX_CASE4: u64 = 539;
    /// Paper's EQueue result, case 1.
    pub const PAPER_CASE1: u64 = 2048;
    /// Paper's EQueue result, case 2.
    pub const PAPER_CASE2: u64 = 143;
    /// Paper's EQueue result, case 3 (79 cycles of warm-up).
    pub const PAPER_CASE3: u64 = 588;
    /// Paper's EQueue result, case 4 (26 cycles of warm-up).
    pub const PAPER_CASE4: u64 = 538;
}

/// FIR workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FirSpec {
    /// Filter length in taps (32 in the tutorial).
    pub taps: usize,
    /// Number of input samples (512 in the tutorial).
    pub samples: usize,
}

impl Default for FirSpec {
    fn default() -> Self {
        FirSpec {
            taps: 32,
            samples: 512,
        }
    }
}

impl FirSpec {
    /// Output groups of 4 samples each.
    pub fn groups(&self) -> usize {
        self.samples / 4
    }

    /// `mul4`/`mac4` ops per group: `taps/2` (each op retires 8 MACs, a
    /// group needs `4·taps`).
    pub fn ops_per_group(&self) -> usize {
        self.taps / 2
    }
}

/// The four design iterations of §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirCase {
    /// One AI Engine, unlimited resources (§VII-C).
    SingleCore,
    /// 16 cores, unlimited bandwidth (§VII-D).
    Pipelined16,
    /// 16 cores, 32-bit stream interconnect (§VII-E).
    Bandwidth16,
    /// 4 cores balanced against the stream (§VII-F).
    Balanced4,
}

impl FirCase {
    /// Core count for the case.
    pub fn cores(self) -> usize {
        match self {
            FirCase::SingleCore => 1,
            FirCase::Pipelined16 | FirCase::Bandwidth16 => 16,
            FirCase::Balanced4 => 4,
        }
    }

    /// Stream bandwidth in bytes/cycle (`None` = unlimited).
    pub fn stream_bandwidth(self) -> Option<u32> {
        match self {
            FirCase::SingleCore | FirCase::Pipelined16 => None,
            FirCase::Bandwidth16 | FirCase::Balanced4 => Some(4),
        }
    }

    /// All four cases in paper order.
    pub fn all() -> [FirCase; 4] {
        [
            FirCase::SingleCore,
            FirCase::Pipelined16,
            FirCase::Bandwidth16,
            FirCase::Balanced4,
        ]
    }

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            FirCase::SingleCore => "case1-single-core",
            FirCase::Pipelined16 => "case2-16-cores-unlimited",
            FirCase::Bandwidth16 => "case3-16-cores-32bit",
            FirCase::Balanced4 => "case4-4-cores-balanced",
        }
    }
}

/// A generated FIR program.
#[derive(Debug)]
pub struct FirProgram {
    /// The EQueue module.
    pub module: Module,
    /// Which case it models.
    pub case: FirCase,
    /// The workload.
    pub spec: FirSpec,
}

/// Generates the EQueue program for one FIR case.
///
/// # Panics
///
/// Panics if `taps` is not a positive multiple of `2·cores` or `samples`
/// is not a positive multiple of 4.
///
/// # Examples
///
/// ```
/// use equeue_gen::{generate_fir, FirCase, FirSpec};
/// use equeue_core::simulate;
/// let prog = generate_fir(FirSpec::default(), FirCase::SingleCore);
/// assert_eq!(simulate(&prog.module).unwrap().cycles, 2048);
/// ```
pub fn generate_fir(spec: FirSpec, case: FirCase) -> FirProgram {
    assert!(
        spec.samples > 0 && spec.samples.is_multiple_of(4),
        "samples must be a positive multiple of 4"
    );
    let cores = case.cores();
    assert!(
        spec.ops_per_group().is_multiple_of(cores) && spec.ops_per_group() > 0,
        "taps/2 must divide evenly across cores"
    );
    let module = match case {
        FirCase::SingleCore => single_core(spec),
        _ => pipelined(spec, cores, case.stream_bandwidth()),
    };
    FirProgram { module, case, spec }
}

/// §VII-C: one core executing the whole 16-op group schedule in a loop.
fn single_core(spec: FirSpec) -> Module {
    use equeue_dialect::AffineBuilder;
    let mut module = Module::new();
    let top = module.top_block();
    let mut b = OpBuilder::at_end(&mut module, top);
    let aie = b.create_proc(kinds::AI_ENGINE);
    let regs = b.create_mem(kinds::REGISTER, &[16], 32, 1);
    let sin = b.alloc(regs, &[4], Type::I32);
    let ifmap = b.alloc(regs, &[4], Type::I32);
    let ofmap = b.alloc(regs, &[4], Type::I32);
    let sout = b.alloc(regs, &[4], Type::I32);
    b.create_comp(&["AIE0", "Registers"], vec![aie, regs]);

    let start = b.control_start();
    let launch = b.launch(start, aie, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), launch.body);
        let (_, body, _g) = ib.affine_for(0, spec.groups() as i64, 1);
        {
            let mut lb = OpBuilder::at_end(ib.module_mut(), body);
            // The paper's single-core schedule: mul4, 11×mac4, refill the
            // ifmap registers, 4×mac4, emit the outputs (§VII-C listing).
            lb.ext_op("mul4", vec![], vec![]);
            for _ in 0..(spec.ops_per_group() - 5) {
                lb.ext_op("mac4", vec![], vec![]);
            }
            let ifmap_tensor = lb.read(sin, None);
            lb.write(ifmap_tensor, ifmap, None);
            for _ in 0..4 {
                lb.ext_op("mac4", vec![], vec![]);
            }
            let ofmap_tensor = lb.read(ofmap, None);
            lb.write(ofmap_tensor, sout, None);
            lb.affine_yield();
        }
        let mut ib = OpBuilder::at_end(&mut module, launch.body);
        ib.ret(vec![]);
    }
    let done = launch.done;
    let mut b = OpBuilder::at_end(&mut module, top);
    b.await_all(vec![done]);
    module
}

/// §VII-D/E/F: a core pipeline with a DMA stream switch per hop.
fn pipelined(spec: FirSpec, cores: usize, bandwidth: Option<u32>) -> Module {
    let mut module = Module::new();
    let top = module.top_block();
    let groups = spec.groups();
    let ops_per_core = spec.ops_per_group() / cores;

    let mut b = OpBuilder::at_end(&mut module, top);
    let aies: Vec<ValueId> = (0..cores)
        .map(|_| b.create_proc(kinds::AI_ENGINE))
        .collect();
    let dmas: Vec<ValueId> = (0..cores).map(|_| b.create_dma()).collect();
    let conns: Vec<ValueId> = (0..cores)
        .map(|_| b.create_connection(ConnKind::Streaming, bandwidth.unwrap_or(0)))
        .collect();
    // One register file per core holding the 4-sample group, plus the
    // external source buffer.
    let regs = b.create_mem(kinds::REGISTER, &[4 * (cores + 1)], 32, 1);
    let sin = b.alloc(regs, &[4], Type::I32);
    let stage_bufs: Vec<ValueId> = (0..cores).map(|_| b.alloc(regs, &[4], Type::I32)).collect();
    {
        let mut names: Vec<String> = vec!["Registers".into()];
        let mut comps = vec![regs];
        for (k, &a) in aies.iter().enumerate() {
            names.push(format!("AIE{k}"));
            comps.push(a);
        }
        for (k, &d) in dmas.iter().enumerate() {
            names.push(format!("Stream{k}"));
            comps.push(d);
        }
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        b.create_comp(&name_refs, comps);
    }

    let start = b.control_start();
    // compute_done[k] for the previous group, per stage.
    let mut prev_compute: Vec<Option<ValueId>> = vec![None; cores];
    let mut final_done = start;
    for _g in 0..groups {
        for k in 0..cores {
            // Arrival of this group's data at stage k via its stream.
            let dep = if k == 0 {
                start
            } else {
                match prev_compute[k - 1] {
                    Some(v) => v,
                    None => unreachable!("stage k-1 computed this group already"),
                }
            };
            let src = if k == 0 { sin } else { stage_bufs[k - 1] };
            let arrived = b.memcpy(dep, src, stage_bufs[k], dmas[k], Some(conns[k]));
            // Compute: this stage's share of the group's mac4 schedule.
            let compute = b.launch(arrived, aies[k], &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), compute.body);
                for _ in 0..ops_per_core {
                    ib.ext_op("mac4", vec![], vec![]);
                }
                ib.ret(vec![]);
            }
            b = OpBuilder::at_end(&mut module, top);
            prev_compute[k] = Some(compute.done);
            if k == cores - 1 {
                final_done = compute.done;
            }
        }
    }
    b.await_all(vec![final_done]);
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::{simulate, simulate_with, SimLibrary, SimOptions};
    use equeue_dialect::standard_registry;
    use equeue_ir::verify_module;

    #[test]
    fn case1_is_2048_cycles() {
        let prog = generate_fir(FirSpec::default(), FirCase::SingleCore);
        verify_module(&prog.module, &standard_registry()).unwrap();
        let report = simulate(&prog.module).unwrap();
        assert_eq!(report.cycles, reference::PAPER_CASE1);
    }

    #[test]
    fn case2_is_143_cycles() {
        let prog = generate_fir(FirSpec::default(), FirCase::Pipelined16);
        verify_module(&prog.module, &standard_registry()).unwrap();
        let report = simulate(&prog.module).unwrap();
        assert_eq!(report.cycles, reference::PAPER_CASE2);
    }

    #[test]
    fn case3_is_588_cycles_with_79_warmup() {
        let prog = generate_fir(FirSpec::default(), FirCase::Bandwidth16);
        let report = simulate(&prog.module).unwrap();
        assert_eq!(report.cycles, reference::PAPER_CASE3);
        // Warm-up: the last stage's first mac4 fires at cycle 79 (§VII-E).
        let first_last_stage = report
            .trace
            .events()
            .iter()
            .filter(|e| e.tid == "AIE15" && e.name == "mac4")
            .map(|e| e.ts)
            .min()
            .unwrap();
        assert_eq!(first_last_stage, 79);
    }

    #[test]
    fn case3_stalls_three_of_four_cycles() {
        // §VII-E: each processor computes 1 cycle then idles 3 while the
        // 32-bit stream delivers the next group — 75% of compute wasted.
        let prog = generate_fir(FirSpec::default(), FirCase::Bandwidth16);
        let report = simulate(&prog.module).unwrap();
        let busy: u64 = report
            .trace
            .events()
            .iter()
            .filter(|e| e.tid == "AIE7")
            .map(|e| e.dur)
            .sum();
        let util = busy as f64 / report.cycles as f64;
        assert!(util < 0.30, "expected <30% utilisation, got {util}");
    }

    #[test]
    fn case4_is_near_538_cycles() {
        let prog = generate_fir(FirSpec::default(), FirCase::Balanced4);
        let report = simulate(&prog.module).unwrap();
        let err = (report.cycles as f64 - reference::PAPER_CASE4 as f64).abs()
            / reference::PAPER_CASE4 as f64;
        assert!(
            err < 0.01,
            "got {} vs paper {}",
            report.cycles,
            reference::PAPER_CASE4
        );
        // Balanced: the middle cores are fully busy in steady state.
        let busy: u64 = report
            .trace
            .events()
            .iter()
            .filter(|e| e.tid == "AIE1")
            .map(|e| e.dur)
            .sum();
        let util = busy as f64 / report.cycles as f64;
        assert!(util > 0.90, "expected >90% utilisation, got {util}");
    }

    #[test]
    fn cases_expose_metadata() {
        assert_eq!(FirCase::SingleCore.cores(), 1);
        assert_eq!(FirCase::Balanced4.cores(), 4);
        assert_eq!(FirCase::Bandwidth16.stream_bandwidth(), Some(4));
        assert_eq!(FirCase::Pipelined16.stream_bandwidth(), None);
        assert_eq!(FirCase::all().len(), 4);
        let spec = FirSpec::default();
        assert_eq!(spec.groups(), 128);
        assert_eq!(spec.ops_per_group(), 16);
    }

    #[test]
    fn smaller_workloads_scale() {
        let spec = FirSpec {
            taps: 16,
            samples: 64,
        };
        let prog = generate_fir(spec, FirCase::SingleCore);
        // 16 groups × 8 ops.
        assert_eq!(simulate(&prog.module).unwrap().cycles, 128);
    }

    #[test]
    fn trace_disabled_still_counts_cycles() {
        let prog = generate_fir(FirSpec::default(), FirCase::Bandwidth16);
        let lib = SimLibrary::standard();
        let report = simulate_with(
            &prog.module,
            &lib,
            &SimOptions {
                trace: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.cycles, reference::PAPER_CASE3);
        assert!(report.trace.is_empty());
    }
}
