//! Engine benchmark scenarios and the canonical golden-scenario list.
//!
//! The module builders (`matmul_linalg`, `matmul_affine`, `tensor_stream`)
//! exercise the engine's hot paths directly, independent of the
//! figure-reproduction drivers: a matmul at the Linalg level (analytic),
//! the same matmul fully lowered to affine loops (interpreter-bound — one
//! `affine.load`/`arith` op per scalar operation), and a tensor-streaming
//! pipeline (launch-capture and whole-tensor read/write bound).
//!
//! [`golden_scenarios`] enumerates one representative module per scenario
//! family (fig09/fig11/fig12, the four FIR cases, and the three engine
//! scenarios above). It is the shared workload list for `simcheck
//! --all-scenarios`, the analysis golden-snapshot tests, and the
//! runtime/static differential suite — one list, so static claims are
//! always validated against the same modules that run.

use equeue_dialect::{
    kinds, AffineBuilder, ArithBuilder, ConnKind, ConvDims, EqueueBuilder, LinalgBuilder,
};
use equeue_ir::{Module, OpBuilder, Type};
use equeue_passes::Dataflow;

use crate::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};

/// An `n×n` integer matmul at the Linalg level: one analytic
/// `linalg.matmul` op inside a launch.
pub fn matmul_linalg(n: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::ARM_R5);
    let mem = b.create_mem(kinds::SRAM, &[3 * n * n], 32, n as u32);
    let a = b.alloc(mem, &[n, n], Type::I32);
    let bb = b.alloc(mem, &[n, n], Type::I32);
    let c = b.alloc(mem, &[n, n], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[a, bb, c], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.linalg_matmul(l.body_args[0], l.body_args[1], l.body_args[2]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// The same `n×n` matmul lowered to affine loops: `n³` iterations of
/// load/load/load/mul/add/store. Interpreter-bound — this is the
/// "64×64 matmul lowering" scenario of the perf trajectory.
pub fn matmul_affine(n: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::ARM_R5);
    let mem = b.create_mem(kinds::REGISTER, &[3 * n * n], 32, n as u32);
    let a = b.alloc(mem, &[n, n], Type::I32);
    let bb = b.alloc(mem, &[n, n], Type::I32);
    let c = b.alloc(mem, &[n, n], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[a, bb, c], vec![]);
    {
        let (va, vb, vc) = (l.body_args[0], l.body_args[1], l.body_args[2]);
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let (_, bi, i) = ib.affine_for(0, n as i64, 1);
        let mut ib = OpBuilder::at_end(ib.module_mut(), bi);
        let (_, bj, j) = ib.affine_for(0, n as i64, 1);
        let mut ib = OpBuilder::at_end(ib.module_mut(), bj);
        let (_, bk, k) = ib.affine_for(0, n as i64, 1);
        {
            let mut kb = OpBuilder::at_end(ib.module_mut(), bk);
            let aik = kb.affine_load(va, vec![i, k]);
            let bkj = kb.affine_load(vb, vec![k, j]);
            let cij = kb.affine_load(vc, vec![i, j]);
            let prod = kb.muli(aik, bkj);
            let sum = kb.addi(cij, prod);
            kb.affine_store(sum, vc, vec![i, j]);
            kb.affine_yield();
        }
        let mut ib = OpBuilder::at_end(&mut m, bj);
        ib.affine_yield();
        let mut ib = OpBuilder::at_end(&mut m, bi);
        ib.affine_yield();
        let mut ib = OpBuilder::at_end(&mut m, l.body);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// A chain of `k` launches, each reading an entire `n×n` tensor out of
/// SRAM and writing it back. Stresses launch-env capture and
/// whole-tensor value movement — the copy-on-write hot path.
pub fn tensor_stream(n: usize, k: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b.create_mem(kinds::SRAM, &[n * n], 32, n as u32);
    let buf = b.alloc(mem, &[n, n], Type::I32);
    let mut dep = b.control_start();
    for _ in 0..k {
        let l = b.launch(dep, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let t = ib.read(l.body_args[0], None);
            ib.write_indexed(t, l.body_args[0], vec![], None);
            ib.ret(vec![]);
        }
        dep = l.done;
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(vec![dep]);
    m
}

/// A conv2d partitioned across a row of MAC PEs, one output channel per
/// PE, with DRAM→Cache DMA staging over a shared streaming connection.
/// Exercises the Cache memory model (LRU tag state), DMA transfer
/// accounting, and a multi-processor launch fan-out — the machine-state
/// surfaces the snapshot format must round-trip.
pub fn conv2d_systolic(hw: usize, f: usize, c: usize, n: usize) -> Module {
    let dims = ConvDims::square(hw, f, c, n);
    let (eh, ew) = (dims.eh(), dims.ew());
    let if_elems = c * hw * hw;
    let w_elems = n * c * f * f;
    let of_elems = n * eh * ew;
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pes: Vec<_> = (0..n).map(|_| b.create_proc(kinds::MAC)).collect();
    let dram = b.create_mem(kinds::DRAM, &[if_elems + w_elems], 32, 1);
    // On-chip working set: staged ifmap plus the per-PE weight and output
    // slices carved out below.
    let cache = b.create_mem(kinds::CACHE, &[if_elems + w_elems + of_elems], 32, 4);
    let dma = b.create_dma();
    let conn = b.create_connection(ConnKind::Streaming, 16);
    let dram_if = b.alloc(dram, &[c, hw, hw], Type::I32);
    let if_c = b.alloc(cache, &[c, hw, hw], Type::I32);
    let start = b.control_start();
    // Stage the shared ifmap on-chip before any PE starts.
    let cp_if = b.memcpy(start, dram_if, if_c, dma, Some(conn));
    let mut dones = Vec::with_capacity(n);
    for pe in pes {
        // Per-PE single-channel weight slice, staged from DRAM; per-PE
        // single-channel output slice.
        let dram_w = b.alloc(dram, &[1, c, f, f], Type::I32);
        let w_pe = b.alloc(cache, &[1, c, f, f], Type::I32);
        let of_pe = b.alloc(cache, &[1, eh, ew], Type::I32);
        let cp = b.memcpy(cp_if, dram_w, w_pe, dma, Some(conn));
        let l = b.launch(cp, pe, &[if_c, w_pe, of_pe], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.linalg_conv2d(l.body_args[0], l.body_args[1], l.body_args[2]);
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(dones);
    m
}

/// Several independent tenants time-sharing one machine: each tenant owns
/// a processor and an SRAM working set and runs a `k`-deep launch chain,
/// with every hop also bouncing its buffer through a shared
/// bandwidth-limited connection via a shared DMA. Tenants interleave in
/// the event heap and contend on the connection's channel reservations —
/// the in-flight state the snapshot format must capture mid-run.
pub fn multi_tenant_trace(tenants: usize, n: usize, k: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let dma = b.create_dma();
    let conn = b.create_connection(ConnKind::Streaming, 8);
    let mut dones = Vec::with_capacity(tenants);
    for _ in 0..tenants {
        let pe = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[2 * n * n], 32, 2);
        let src = b.alloc(mem, &[n, n], Type::I32);
        let dst = b.alloc(mem, &[n, n], Type::I32);
        let mut dep = b.control_start();
        for hop in 0..k {
            let (from, to) = if hop % 2 == 0 { (src, dst) } else { (dst, src) };
            let moved = b.memcpy(dep, from, to, dma, Some(conn));
            let l = b.launch(moved, pe, &[to], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                let t = ib.read(l.body_args[0], None);
                ib.write_indexed(t, l.body_args[0], vec![], None);
                ib.ret(vec![]);
            }
            dep = l.done;
            b = OpBuilder::at_end(&mut m, blk);
        }
        dones.push(dep);
    }
    b.await_all(dones);
    m
}

/// A `rows×cols` grid of processors, each launched once with a small
/// affine accumulation loop over its own register slice. Stresses the
/// event heap, sequence numbering, and per-processor runtime count — the
/// "many small frames" shape of the snapshot encoding.
pub fn mega_grid(rows: usize, cols: usize, iters: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::REGISTER, &[rows * cols * iters], 32, 1);
    let start = b.control_start();
    let mut dones = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        let pe = b.create_proc(kinds::MAC);
        let buf = b.alloc(mem, &[iters], Type::I32);
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let v = l.body_args[0];
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, bi, i) = ib.affine_for(0, iters as i64, 1);
            {
                let mut lb = OpBuilder::at_end(ib.module_mut(), bi);
                let x = lb.affine_load(v, vec![i]);
                let y = lb.addi(x, x);
                lb.affine_store(y, v, vec![i]);
                lb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(dones);
    m
}

/// A `rows×cols` grid of processors where each PE owns a *private*
/// register memory: every PE+memory pair forms its own conflict group, so
/// all `rows*cols` launches are shard-pure and independently offloadable
/// — the canonical multi-group workload for the group-sharded parallel
/// engine (`SimOptions::threads > 1`). Contrast with [`mega_grid`], whose
/// single shared memory merges the whole grid into one group.
pub fn shard_grid(rows: usize, cols: usize, iters: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let start = b.control_start();
    let mut dones = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        let pe = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::REGISTER, &[iters], 32, 1);
        let buf = b.alloc(mem, &[iters], Type::I32);
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let v = l.body_args[0];
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, bi, i) = ib.affine_for(0, iters as i64, 1);
            {
                let mut lb = OpBuilder::at_end(ib.module_mut(), bi);
                let x = lb.affine_load(v, vec![i]);
                let y = lb.addi(x, x);
                lb.affine_store(y, v, vec![i]);
                lb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(dones);
    m
}

/// One named golden scenario.
pub struct GoldenScenario {
    /// Stable scenario name (`"fig09_4x4_ws_8x8"`). Sorted-unique across
    /// the list; used as the snapshot/file key.
    pub name: &'static str,
    /// The module.
    pub module: Module,
}

/// The canonical golden-scenario list: one representative module per
/// scenario family, in a fixed deterministic order. Shared by `simcheck
/// --all-scenarios`, the golden-snapshot tests, and the runtime/static
/// differential suite.
pub fn golden_scenarios() -> Vec<GoldenScenario> {
    let mut out = Vec::new();
    // Fig. 9: the 4×4 weight-stationary array on an 8×8 ifmap.
    out.push(GoldenScenario {
        name: "fig09_4x4_ws_8x8",
        module: generate_systolic(
            &SystolicSpec {
                rows: 4,
                cols: 4,
                dataflow: Dataflow::Ws,
            },
            ConvDims::square(8, 2, 3, 1),
        )
        .module,
    });
    // Fig. 11: every lowering stage at one (dims, dataflow) point.
    let dims = ConvDims::square(8, 3, 3, 4);
    for (stage, name) in [
        (Stage::Linalg, "fig11_linalg_ws_8"),
        (Stage::Affine, "fig11_affine_ws_8"),
        (Stage::Reassign, "fig11_reassign_ws_8"),
        (Stage::Systolic, "fig11_systolic_ws_8"),
    ] {
        out.push(GoldenScenario {
            name,
            module: build_stage_program(stage, dims, (4, 4), Dataflow::Ws).module,
        });
    }
    // Fig. 12: one mid-grid sweep point per dataflow (8×8 array).
    for (df, name) in [
        (Dataflow::Ws, "fig12_ah8_hw16_f4_c4_n8_ws"),
        (Dataflow::Is, "fig12_ah8_hw16_f4_c4_n8_is"),
        (Dataflow::Os, "fig12_ah8_hw16_f4_c4_n8_os"),
    ] {
        out.push(GoldenScenario {
            name,
            module: generate_systolic(
                &SystolicSpec {
                    rows: 8,
                    cols: 8,
                    dataflow: df,
                },
                ConvDims {
                    h: 16,
                    w: 16,
                    fh: 4,
                    fw: 4,
                    c: 4,
                    n: 8,
                },
            )
            .module,
        });
    }
    // §VII: the four FIR design iterations.
    for (case, name) in [
        (FirCase::SingleCore, "fir_single_core"),
        (FirCase::Pipelined16, "fir_pipelined16"),
        (FirCase::Bandwidth16, "fir_bandwidth16"),
        (FirCase::Balanced4, "fir_balanced4"),
    ] {
        out.push(GoldenScenario {
            name,
            module: generate_fir(FirSpec::default(), case).module,
        });
    }
    // Engine benchmark scenarios.
    out.push(GoldenScenario {
        name: "matmul_linalg16",
        module: matmul_linalg(16),
    });
    out.push(GoldenScenario {
        name: "matmul_affine16",
        module: matmul_affine(16),
    });
    out.push(GoldenScenario {
        name: "tensor_stream_64x8",
        module: tensor_stream(64, 8),
    });
    // Scenario-diversity sweep: cache + DMA staging, tenant interleaving,
    // and a wide processor grid.
    out.push(GoldenScenario {
        name: "conv2d_systolic_8x3",
        module: conv2d_systolic(8, 3, 2, 4),
    });
    out.push(GoldenScenario {
        name: "multi_tenant_4x16x6",
        module: multi_tenant_trace(4, 16, 6),
    });
    out.push(GoldenScenario {
        name: "mega_grid_8x8",
        module: mega_grid(8, 8, 4),
    });
    // Multi-group shard target: per-PE private memories, so the parallel
    // engine's offload path actually engages on this one.
    out.push(GoldenScenario {
        name: "shard_grid_4x4",
        module: shard_grid(4, 4, 4),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_scenario_names_are_unique() {
        let list = golden_scenarios();
        let mut names: Vec<&str> = list.iter().map(|s| s.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert!(n >= 12, "scenario list unexpectedly small: {n}");
    }

    #[test]
    fn golden_scenarios_simulate() {
        use equeue_core::{simulate_with, SimLibrary, SimOptions};
        let lib = SimLibrary::standard();
        let opts = SimOptions {
            trace: false,
            ..Default::default()
        };
        for s in golden_scenarios() {
            let r = simulate_with(&s.module, &lib, &opts);
            assert!(r.is_ok(), "{} failed: {:?}", s.name, r.err());
        }
    }
}
