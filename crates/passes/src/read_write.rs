//! `--equeue-read-write` (§V-1): rewrite Affine loads/stores on EQueue
//! buffers into explicit `equeue.read`/`equeue.write` data movement.

use equeue_ir::{IrResult, Module, OpBuilder, Pass, Type};

/// The read/write conversion pass.
///
/// Only accesses whose target is an `!equeue.buffer` are rewritten; plain
/// `memref` accesses (not yet placed on a hardware memory by
/// [`AllocateMemory`](crate::AllocateMemory)) are left alone.
#[derive(Debug, Default, Clone, Copy)]
pub struct EqueueReadWrite;

impl Pass for EqueueReadWrite {
    fn name(&self) -> &str {
        "equeue-read-write"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for op in module.find_all("affine.load") {
            let target = module.op(op).operands[0];
            if !matches!(module.value_type(target), Type::Buffer { .. }) {
                continue;
            }
            let indices = module.op(op).operands[1..].to_vec();
            let old_result = module.result(op, 0);
            let mut b = OpBuilder::before(module, op);
            let n_idx = indices.len() as i64;
            let elem = b
                .module()
                .value_type(target)
                .elem()
                .cloned()
                .unwrap_or(Type::Any);
            let new = b
                .op("equeue.read")
                .attr("segments", vec![1, n_idx, 0])
                .operand(target)
                .operands(indices)
                .result(elem)
                .finish();
            let new_result = module.result(new, 0);
            module.replace_all_uses(old_result, new_result);
            module.erase_op(op);
        }
        for op in module.find_all("affine.store") {
            let target = module.op(op).operands[1];
            if !matches!(module.value_type(target), Type::Buffer { .. }) {
                continue;
            }
            let value = module.op(op).operands[0];
            let indices = module.op(op).operands[2..].to_vec();
            let mut b = OpBuilder::before(module, op);
            let n_idx = indices.len() as i64;
            b.op("equeue.write")
                .attr("segments", vec![1, 1, n_idx, 0])
                .operand(value)
                .operand(target)
                .operands(indices)
                .finish();
            module.erase_op(op);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, standard_registry, AffineBuilder, ArithBuilder, EqueueBuilder};
    use equeue_ir::verify_module;

    #[test]
    fn converts_buffer_accesses_only() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let ebuf = b.alloc(mem, &[8], Type::I32);
        let mbuf = b.memref_alloc(Type::memref(vec![8], Type::I32));
        let i = b.const_index(0);
        let v1 = b.affine_load(ebuf, vec![i]);
        let v2 = b.affine_load(mbuf, vec![i]);
        b.affine_store(v1, ebuf, vec![i]);
        b.affine_store(v2, mbuf, vec![i]);

        EqueueReadWrite.run(&mut m).unwrap();
        assert_eq!(m.find_all("equeue.read").len(), 1);
        assert_eq!(m.find_all("equeue.write").len(), 1);
        assert_eq!(m.find_all("affine.load").len(), 1);
        assert_eq!(m.find_all("affine.store").len(), 1);
        verify_module(&m, &standard_registry()).unwrap();
    }

    #[test]
    fn rewritten_uses_point_at_read() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let ebuf = b.alloc(mem, &[8], Type::I32);
        let i = b.const_index(3);
        let v = b.affine_load(ebuf, vec![i]);
        let s = b.addi(v, v);
        EqueueReadWrite.run(&mut m).unwrap();
        let read = m.find_first("equeue.read").unwrap();
        let addi = m.find_first("arith.addi").unwrap();
        assert_eq!(m.op(addi).operands[0], m.result(read, 0));
        let _ = s;
        verify_module(&m, &standard_registry()).unwrap();
    }
}
