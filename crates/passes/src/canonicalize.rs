//! Canonicalization: constant folding and common-subexpression elimination
//! for pure ops, plus dead-code elimination.
//!
//! Not one of the paper's ten passes, but the kind of generic compiler
//! infrastructure the paper's "leverage a broad ecosystem of
//! transformations" argument presumes: lowering pipelines emit redundant
//! index arithmetic (e.g. the flatten pass's `div`/`rem` chains), and the
//! canonicalizer cleans it up for free for *every* hardware model.

use equeue_dialect::standard_registry;
use equeue_ir::{dce, IrResult, Module, OpBuilder, OpId, Pass, ValueId};
use std::collections::HashMap;

/// The canonicalization pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &str {
        "canonicalize"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        fold_constants(module);
        cse(module);
        let registry = standard_registry();
        dce(module, &registry);
        Ok(())
    }
}

fn const_value(module: &Module, v: ValueId) -> Option<i64> {
    match module.value(v).def {
        equeue_ir::ValueDef::OpResult { op, .. } => {
            let data = module.op(op);
            if data.name == "arith.constant" && !data.erased {
                data.attrs.int("value")
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Folds integer binary ops over constant operands into constants.
fn fold_constants(module: &mut Module) {
    loop {
        let mut changed = false;
        let ops = module.find_all("arith.addi");
        let more = ["arith.subi", "arith.muli", "arith.divi", "arith.remi"]
            .iter()
            .flat_map(|n| module.find_all(n))
            .collect::<Vec<_>>();
        for op in ops.into_iter().chain(more) {
            if module.op(op).erased {
                continue;
            }
            let (a, b) = {
                let o = &module.op(op).operands;
                if o.len() != 2 {
                    continue;
                }
                (o[0], o[1])
            };
            let (Some(ca), Some(cb)) = (const_value(module, a), const_value(module, b)) else {
                continue;
            };
            let result = match module.op(op).name.as_str() {
                "arith.addi" => ca.wrapping_add(cb),
                "arith.subi" => ca.wrapping_sub(cb),
                "arith.muli" => ca.wrapping_mul(cb),
                "arith.divi" if cb != 0 => ca / cb,
                "arith.remi" if cb != 0 => ca % cb,
                _ => continue,
            };
            let ty = module.value_type(module.result(op, 0)).clone();
            if ty.is_shaped() {
                continue;
            }
            let old = module.result(op, 0);
            let mut builder = OpBuilder::before(module, op);
            let folded = builder
                .op("arith.constant")
                .attr("value", result)
                .result(ty)
                .finish();
            let new = module.result(folded, 0);
            module.replace_all_uses(old, new);
            module.erase_op(op);
            changed = true;
        }
        if !changed {
            break;
        }
    }
}

/// A structural key for CSE: name, operands, and attribute rendering.
fn cse_key(module: &Module, op: OpId) -> Option<String> {
    let data = module.op(op);
    // Only ops without regions participate (regions would need deep
    // structural equality).
    if !data.regions.is_empty() {
        return None;
    }
    let attrs: Vec<String> = data.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let operands: Vec<String> = data.operands.iter().map(|v| format!("{v:?}")).collect();
    let types: Vec<String> = data
        .results
        .iter()
        .map(|&r| module.value_type(r).to_string())
        .collect();
    Some(format!(
        "{}|{}|{}|{}",
        data.name,
        operands.join(","),
        attrs.join(","),
        types.join(",")
    ))
}

/// Eliminates duplicate pure ops within each block.
fn cse(module: &mut Module) {
    let registry = standard_registry();
    // Collect blocks by walking ops.
    let mut blocks = vec![module.top_block()];
    module.walk(|op| {
        for &r in &module.op(op).regions {
            blocks.extend(module.region(r).blocks.iter().copied());
        }
    });
    for block in blocks {
        let mut seen: HashMap<String, OpId> = HashMap::new();
        let ops = module.block(block).ops.clone();
        for op in ops {
            if module.op(op).erased || !registry.traits(&module.op(op).name).is_pure {
                continue;
            }
            let Some(key) = cse_key(module, op) else {
                continue;
            };
            match seen.get(&key) {
                Some(&prev) => {
                    let results = module.op(op).results.clone();
                    let prev_results = module.op(prev).results.clone();
                    for (old, new) in results.into_iter().zip(prev_results) {
                        module.replace_all_uses(old, new);
                    }
                    module.erase_op(op);
                }
                None => {
                    seen.insert(key, op);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::ArithBuilder;
    use equeue_ir::verify_module;
    use equeue_ir::Type;

    #[test]
    fn folds_constant_chains() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let two = b.const_int(2, Type::I32);
        let three = b.const_int(3, Type::I32);
        let five = b.addi(two, three);
        let ten = b.muli(five, two);
        b.op("test.use").operand(ten).finish();

        Canonicalize.run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        // addi and muli folded away; the use sees a constant 10.
        assert!(m.find_first("arith.addi").is_none());
        assert!(m.find_first("arith.muli").is_none());
        let use_op = m.find_first("test.use").unwrap();
        let operand = m.op(use_op).operands[0];
        assert_eq!(
            m.op(match m.value(operand).def {
                equeue_ir::ValueDef::OpResult { op, .. } => op,
                _ => panic!(),
            })
            .attrs
            .int("value"),
            Some(10)
        );
    }

    #[test]
    fn folds_div_rem_guarding_zero() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let seven = b.const_int(7, Type::I32);
        let zero = b.const_int(0, Type::I32);
        let div = b.divi(seven, zero); // must NOT fold
        b.op("test.use").operand(div).finish();
        Canonicalize.run(&mut m).unwrap();
        assert!(m.find_first("arith.divi").is_some());
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let x = b.op("test.input").result(Type::I32).finish_value();
        let a = b.addi(x, x);
        let bb = b.addi(x, x); // duplicate
        b.op("test.use").operands(vec![a, bb]).finish();
        Canonicalize.run(&mut m).unwrap();
        assert_eq!(m.find_all("arith.addi").len(), 1);
        let use_op = m.find_first("test.use").unwrap();
        assert_eq!(m.op(use_op).operands[0], m.op(use_op).operands[1]);
    }

    #[test]
    fn cse_respects_blocks_and_impurity() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        // Impure ops never merge.
        b.op("test.effect").attr("k", 1i64).finish();
        b.op("test.effect").attr("k", 1i64).finish();
        Canonicalize.run(&mut m).unwrap();
        assert_eq!(m.find_all("test.effect").len(), 2);
    }

    #[test]
    fn dce_removes_unused_constants() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.const_int(42, Type::I32); // dead
        let live = b.const_int(7, Type::I32);
        b.op("test.use").operand(live).finish();
        Canonicalize.run(&mut m).unwrap();
        assert_eq!(m.find_all("arith.constant").len(), 1);
    }

    #[test]
    fn canonicalize_cleans_flattened_conv_index_math() {
        use crate::{ConvertLinalgToAffineLoops, Dataflow, FlattenConvLoops};
        use equeue_dialect::{AffineBuilder, LinalgBuilder};
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let i = b.memref_alloc(Type::memref(vec![2, 5, 5], Type::I32));
        let w = b.memref_alloc(Type::memref(vec![2, 2, 2, 2], Type::I32));
        let o = b.memref_alloc(Type::memref(vec![2, 4, 4], Type::I32));
        b.linalg_conv2d(i, w, o);
        ConvertLinalgToAffineLoops.run(&mut m).unwrap();
        FlattenConvLoops::new(Dataflow::Ws).run(&mut m).unwrap();
        let before = m.live_ops().count();
        Canonicalize.run(&mut m).unwrap();
        let after = m.live_ops().count();
        assert!(after <= before);
        verify_module(&m, &standard_registry()).unwrap();
    }
}
