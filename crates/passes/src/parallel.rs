//! `--parallel-to-equeue` (§V-9) and `--lower-extraction` (§V-10).
//!
//! `ParallelToEqueue` converts an `affine.parallel` into genuinely
//! concurrent `equeue.launch` events — one per iteration point — joined by
//! a `control_and` tree and an `await`, reproducing the paper's `par_for`
//! pattern (§VI-B-1).
//!
//! `LowerExtraction` unrolls vector-form component references
//! (`equeue.get_comp_vec`, which names several children at once) into
//! individual `equeue.get_comp` ops, so each unrolled launch can target its
//! own processing element.

use equeue_ir::{Attr, IrError, IrResult, Module, OpBuilder, OpId, Pass, Type, ValueId};
use std::collections::HashMap;

/// Converts `affine.parallel` loops into per-iteration `equeue.launch`
/// events on a round-robin assignment over the given processors.
#[derive(Debug, Clone)]
pub struct ParallelToEqueue {
    procs: Vec<ValueId>,
}

impl ParallelToEqueue {
    /// Distributes iterations over `procs` (values of `!equeue.proc` type).
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty.
    pub fn new(procs: Vec<ValueId>) -> Self {
        assert!(!procs.is_empty(), "need at least one processor");
        ParallelToEqueue { procs }
    }
}

impl Pass for ParallelToEqueue {
    fn name(&self) -> &str {
        "parallel-to-equeue"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for par in module.find_all("affine.parallel") {
            self.lower_one(module, par)?;
        }
        Ok(())
    }
}

impl ParallelToEqueue {
    fn lower_one(&self, module: &mut Module, par: OpId) -> IrResult<()> {
        let attrs = module.op(par).attrs.clone();
        let lowers = attrs
            .int_array("lowers")
            .ok_or_else(|| IrError::pass("parallel-to-equeue", "missing lowers"))?
            .to_vec();
        let uppers = attrs.int_array("uppers").unwrap_or(&[]).to_vec();
        let steps = attrs.int_array("steps").unwrap_or(&[]).to_vec();
        if lowers.len() != uppers.len() || lowers.len() != steps.len() {
            return Err(IrError::pass("parallel-to-equeue", "malformed bounds"));
        }
        let region = module.op(par).regions[0];
        let body = module.region(region).blocks[0];
        let ivs = module.block(body).args.clone();

        // Enumerate the iteration space.
        let mut points: Vec<Vec<i64>> = vec![vec![]];
        for d in 0..lowers.len() {
            let mut next = vec![];
            for p in &points {
                let mut v = lowers[d];
                while v < uppers[d] {
                    let mut q = p.clone();
                    q.push(v);
                    next.push(q);
                    v += steps[d];
                }
            }
            points = next;
        }

        let (Some(parent), Some(at)) = (module.op(par).parent_block, module.op_index_in_block(par))
        else {
            unreachable!("the pass only rewrites attached ops")
        };
        let mut b = OpBuilder::at(module, parent, at);
        let start = b
            .op("equeue.control_start")
            .result(Type::Signal)
            .finish_value();

        let mut dones: Vec<ValueId> = vec![];
        for (i, point) in points.iter().enumerate() {
            let proc = self.procs[i % self.procs.len()];
            // Fresh launch body; ivs map to constants inside it.
            let region2 = module.new_region(None);
            let body2 = module.new_block(region2, vec![]);
            let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
            {
                let mut ib = OpBuilder::at_end(module, body2);
                for (iv, val) in ivs.iter().zip(point) {
                    let c = ib
                        .op("arith.constant")
                        .attr("value", *val)
                        .result(Type::Index)
                        .finish_value();
                    value_map.insert(*iv, c);
                }
            }
            // Clone body ops (minus the yield) into the launch body.
            let src_ops: Vec<OpId> = module.block(body).ops.clone();
            for op in src_ops {
                if module.op(op).erased || module.op(op).name == "affine.yield" {
                    continue;
                }
                let cloned = module.clone_op(op, &mut value_map);
                module.append_op(body2, cloned);
            }
            {
                let mut ib = OpBuilder::at_end(module, body2);
                ib.op("equeue.return").finish();
            }
            let mut lb = OpBuilder::at(module, parent, at + 1 + i);
            let launch = lb
                .op("equeue.launch")
                .operand(start)
                .operand(proc)
                .result(Type::Signal)
                .region(region2)
                .finish();
            dones.push(module.result(launch, 0));
        }

        // Join: control_and over all launches, then await (the par_for
        // barrier of §VI-B-1).
        let insert_after = at + 1 + dones.len();
        let mut jb = OpBuilder::at(module, parent, insert_after);
        let all = jb
            .op("equeue.control_and")
            .operands(dones.iter().copied())
            .result(Type::Signal)
            .finish_value();
        jb.op("equeue.await").operand(all).finish();

        module.erase_op(par);
        Ok(())
    }
}

/// Unrolls `equeue.get_comp_vec` (one op naming N children, producing N
/// component results) into N `equeue.get_comp` ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerExtraction;

impl Pass for LowerExtraction {
    fn name(&self) -> &str {
        "lower-extraction"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for op in module.find_all("equeue.get_comp_vec") {
            let names: Vec<String> = match module.op(op).attrs.get("names") {
                Some(Attr::StrArray(v)) => v.clone(),
                _ => {
                    return Err(IrError::pass(
                        "lower-extraction",
                        "get_comp_vec needs a 'names' string array",
                    ))
                }
            };
            let comp = module.op(op).operands[0];
            let results = module.op(op).results.clone();
            if names.len() != results.len() {
                return Err(IrError::pass(
                    "lower-extraction",
                    "get_comp_vec result count must match names",
                ));
            }
            for (name, old) in names.iter().zip(results.iter()) {
                let ty = module.value_type(*old).clone();
                let mut b = OpBuilder::before(module, op);
                let new = b
                    .op("equeue.get_comp")
                    .attr("name", name.as_str())
                    .operand(comp)
                    .result(ty)
                    .finish();
                let nv = module.result(new, 0);
                module.replace_all_uses(*old, nv);
            }
            module.erase_op(op);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::{kinds, standard_registry, AffineBuilder, EqueueBuilder};
    use equeue_ir::verify_module;

    #[test]
    fn parallel_becomes_concurrent_launches() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let procs: Vec<ValueId> = (0..4).map(|_| b.create_proc(kinds::MAC)).collect();
        let (_, body, _ivs) = b.affine_parallel(vec![0, 0], vec![2, 2], vec![1, 1]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), body);
            ib.ext_op("mac", vec![], vec![]);
            ib.affine_yield();
        }
        ParallelToEqueue::new(procs).run(&mut m).unwrap();
        assert!(m.find_first("affine.parallel").is_none());
        assert_eq!(m.find_all("equeue.launch").len(), 4);
        assert_eq!(m.find_all("equeue.control_and").len(), 1);
        verify_module(&m, &standard_registry()).unwrap();
        // 4 iterations on 4 PEs in parallel: 1 cycle.
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn parallel_round_robin_serialises_on_fewer_procs() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let procs: Vec<ValueId> = (0..2).map(|_| b.create_proc(kinds::MAC)).collect();
        let (_, body, _) = b.affine_parallel(vec![0], vec![4], vec![1]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), body);
            ib.ext_op("mac", vec![], vec![]);
            ib.affine_yield();
        }
        ParallelToEqueue::new(procs).run(&mut m).unwrap();
        // 4 iterations over 2 PEs: 2 cycles.
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 2);
    }

    #[test]
    fn lower_extraction_unrolls() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let p0 = b.create_proc(kinds::MAC);
        let p1 = b.create_proc(kinds::MAC);
        let comp = b.create_comp(&["PE0", "PE1"], vec![p0, p1]);
        let vec_op = b
            .op("equeue.get_comp_vec")
            .attr("names", Attr::StrArray(vec!["PE0".into(), "PE1".into()]))
            .operand(comp)
            .results(vec![Type::Proc, Type::Proc])
            .finish();
        let r0 = m.result(vec_op, 0);
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let l = b.launch(start, r0, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ret(vec![]);
        }
        LowerExtraction.run(&mut m).unwrap();
        assert!(m.find_first("equeue.get_comp_vec").is_none());
        assert_eq!(m.find_all("equeue.get_comp").len(), 2);
        verify_module(&m, &standard_registry()).unwrap();
        simulate(&m).unwrap();
    }
}
