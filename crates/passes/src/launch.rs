//! `--launch` (§V-3): wrap the computational code of the top block into an
//! `equeue.launch` on a specified processor, gated by a fresh
//! `control_start` and followed by an `await`.

use equeue_ir::{IrError, IrResult, Module, OpBuilder, OpId, Pass, Type, ValueId};

/// Ops that stay at the top level (structure, buffers, constants, events).
fn stays_outside(name: &str) -> bool {
    name.starts_with("equeue.create_")
        || matches!(
            name,
            "equeue.add_comp"
                | "equeue.get_comp"
                | "equeue.alloc"
                | "equeue.dealloc"
                | "memref.alloc"
                | "memref.dealloc"
                | "arith.constant"
                | "equeue.control_start"
                | "equeue.launch"
                | "equeue.memcpy"
                | "equeue.await"
                | "equeue.control_and"
                | "equeue.control_or"
        )
}

/// The launch-wrapping pass.
///
/// Finds the contiguous run of computational ops in the top block (loops,
/// loads/stores, linalg ops, arithmetic past the first computational op)
/// and moves them into a launch body on the given processor.
#[derive(Debug, Clone, Copy)]
pub struct WrapInLaunch {
    proc: ValueId,
}

impl WrapInLaunch {
    /// Wraps top-level computation onto `proc` (an `!equeue.proc` value).
    pub fn new(proc: ValueId) -> Self {
        WrapInLaunch { proc }
    }
}

impl Pass for WrapInLaunch {
    fn name(&self) -> &str {
        "launch"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        let top = module.top_block();
        let ops: Vec<OpId> = module
            .block(top)
            .ops
            .iter()
            .copied()
            .filter(|&o| !module.op(o).erased)
            .collect();
        let first = ops.iter().position(|&o| !stays_outside(&module.op(o).name));
        let Some(first) = first else {
            return Ok(()); // nothing to wrap
        };
        let Some(last) = ops
            .iter()
            .rposition(|&o| !stays_outside(&module.op(o).name))
        else {
            unreachable!("position above found a match")
        };
        let to_move: Vec<OpId> = ops[first..=last].to_vec();

        // Values defined in the moved range must not be used after it.
        let moved_results: std::collections::HashSet<ValueId> = to_move
            .iter()
            .flat_map(|&o| module.op(o).results.iter().copied())
            .collect();
        for &later in &ops[last + 1..] {
            for v in &module.op(later).operands {
                if moved_results.contains(v) {
                    return Err(IrError::pass(
                        "launch",
                        "a value defined in the wrapped code is used after it; \
                         cannot wrap into a launch",
                    ));
                }
            }
        }

        // Build: control_start; launch(start, proc) { moved ops; return };
        // await(done).
        let proc = self.proc;
        let insert_at = first;
        let region = module.new_region(None);
        let body = module.new_block(region, vec![]);
        for &op in &to_move {
            module.detach_op(op);
            module.append_op(body, op);
        }
        {
            let mut ib = OpBuilder::at_end(module, body);
            ib.op("equeue.return").finish();
        }
        let mut b = OpBuilder::at(module, top, insert_at);
        let start = b
            .op("equeue.control_start")
            .result(Type::Signal)
            .finish_value();
        let launch = b
            .op("equeue.launch")
            .operand(start)
            .operand(proc)
            .result(Type::Signal)
            .region(region)
            .finish();
        let done = b.module().result(launch, 0);
        b.op("equeue.await").operand(done).finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::{
        kinds, standard_registry, AffineBuilder, ArithBuilder, EqueueBuilder, LinalgBuilder,
    };
    use equeue_ir::verify_module;

    #[test]
    fn wraps_linalg_op() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let kernel = b.create_proc(kinds::ARM_R5);
        let sram = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let i = b.alloc(sram, &[1, 4, 4], Type::I32);
        let w = b.alloc(sram, &[1, 1, 2, 2], Type::I32);
        let o = b.alloc(sram, &[1, 3, 3], Type::I32);
        b.linalg_conv2d(i, w, o);
        WrapInLaunch::new(kernel).run(&mut m).unwrap();

        assert_eq!(m.find_all("equeue.launch").len(), 1);
        assert_eq!(m.find_all("equeue.await").len(), 1);
        verify_module(&m, &standard_registry()).unwrap();
        // The wrapped program simulates: conv of 3x3 out, 2x2 filter =
        // 9*4 MACs × 8 cycles each (analytic linalg model).
        let report = simulate(&m).unwrap();
        assert!(report.cycles > 0);
    }

    #[test]
    fn no_compute_is_noop() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.create_proc(kinds::ARM_R5);
        let before = m.live_ops().count();
        let proc = m.result(m.find_first("equeue.create_proc").unwrap(), 0);
        WrapInLaunch::new(proc).run(&mut m).unwrap();
        assert_eq!(m.live_ops().count(), before);
    }

    #[test]
    fn rejects_escaping_values() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let kernel = b.create_proc(kinds::ARM_R5);
        let x = b.const_int(1, Type::I32);
        let y = b.addi(x, x); // computational
                              // A later *computational* op uses y — fine, it moves too. But a
                              // trailing await-like op that cannot move must not use y. Fake one:
        let (_, body, _) = b.affine_for(0, 1, 1);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), body);
            ib.affine_yield();
        }
        // Append an op that stays outside but uses y.
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.op("equeue.await").operand(y).finish(); // abuses await, fine for the test
        let err = WrapInLaunch::new(kernel).run(&mut m).unwrap_err();
        assert!(err.to_string().contains("used after"));
    }
}
