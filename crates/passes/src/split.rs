//! `--split-launch` (§V-6): split a launch block in two, threading values
//! defined in the head and used in the tail through launch results and
//! captures. The systolic lowering uses this to separate the read/compute
//! stage from the write stage.

use equeue_dialect::launch_view;
use equeue_ir::{IrError, IrResult, Module, OpBuilder, OpId, Pass, Type, ValueId};
use std::collections::HashMap;

/// Splits the `index`-th op boundary of a given launch body.
#[derive(Debug, Clone, Copy)]
pub struct SplitLaunch {
    launch: OpId,
    at: usize,
}

impl SplitLaunch {
    /// Splits `launch`'s body so ops `[at..]` move to a new dependent
    /// launch on the same processor.
    pub fn new(launch: OpId, at: usize) -> Self {
        SplitLaunch { launch, at }
    }
}

impl Pass for SplitLaunch {
    fn name(&self) -> &str {
        "split-launch"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        let launch = self.launch;
        if module.op(launch).name != "equeue.launch" {
            return Err(IrError::pass(self.name(), "target is not an equeue.launch"));
        }
        let view = launch_view(module, launch).map_err(|e| IrError::pass(self.name(), e))?;
        let body = view.body;
        let body_ops: Vec<OpId> = module.block(body).ops.clone();
        if self.at == 0 || self.at >= body_ops.len() {
            return Err(IrError::pass(self.name(), "split point out of range"));
        }
        // Tail ops (excluding the original terminator, which stays with the
        // tail's new launch).
        let head_ops = &body_ops[..self.at];
        let tail_ops: Vec<OpId> = body_ops[self.at..].to_vec();

        // Values defined in the head and used in the tail must thread
        // through: they become extra results of launch 1 and captures of
        // launch 2.
        let head_results: Vec<ValueId> = head_ops
            .iter()
            .flat_map(|&o| module.op(o).results.clone())
            .collect();
        let mut threaded: Vec<ValueId> = vec![];
        for &t in &tail_ops {
            let mut nested = vec![t];
            nested.extend(
                module
                    .op(t)
                    .regions
                    .iter()
                    .flat_map(|&r| module.region_ops(r)),
            );
            for op in nested {
                for v in &module.op(op).operands {
                    if head_results.contains(v) && !threaded.contains(v) {
                        threaded.push(*v);
                    }
                }
            }
        }

        // Rebuild the head terminator: return old results + threaded values.
        let Some(&old_ret) = body_ops.last() else {
            unreachable!("launch bodies end with a terminator")
        };
        let is_ret = module.op(old_ret).name == "equeue.return";
        let old_ret_operands = if is_ret {
            module.op(old_ret).operands.clone()
        } else {
            vec![]
        };

        // Detach tail ops into a fresh region.
        let region2 = module.new_region(None);
        let arg_types: Vec<Type> = threaded
            .iter()
            .map(|&v| module.value_type(v).clone())
            .collect();
        let body2 = module.new_block(region2, arg_types);
        for &op in &tail_ops {
            module.detach_op(op);
            module.append_op(body2, op);
        }
        // Remap threaded values to block args inside the tail.
        let args2 = module.block(body2).args.clone();
        let remap: HashMap<ValueId, ValueId> = threaded
            .iter()
            .copied()
            .zip(args2.iter().copied())
            .collect();
        for op in module.region_ops(region2) {
            let operands = module.op(op).operands.clone();
            for (i, v) in operands.iter().enumerate() {
                if let Some(&nv) = remap.get(v) {
                    module.set_operand(op, i, nv);
                }
            }
        }

        // Head terminator: return threaded values.
        {
            let mut hb = OpBuilder::at_end(module, body);
            hb.op("equeue.return")
                .operands(threaded.iter().copied())
                .finish();
        }

        // Extend launch 1 with extra results for the threaded values.
        // Simplest faithful encoding: rebuild launch 1 with the same
        // operands/region plus new result types.
        let l1_data = module.op(launch).clone();
        let mut result_types: Vec<Type> = l1_data
            .results
            .iter()
            .map(|&r| module.value_type(r).clone())
            .collect();
        result_types.extend(threaded.iter().map(|&v| module.value_type(v).clone()));
        let region1 = l1_data.regions[0];
        // Detach region from old op so the new op can own it.
        let new_l1 = module.create_op(
            "equeue.launch",
            l1_data.operands.clone(),
            result_types,
            l1_data.attrs.clone(),
            vec![region1],
        );
        let (Some(at_idx), Some(parent)) = (
            module.op_index_in_block(launch),
            module.op(launch).parent_block,
        ) else {
            unreachable!("the pass only rewrites attached launches")
        };
        // Replace old results with the new op's.
        for (i, &old) in l1_data.results.iter().enumerate() {
            let new = module.result(new_l1, i);
            module.replace_all_uses(old, new);
        }
        module.detach_op(launch);
        module.op_mut(launch).regions.clear(); // region moved to new_l1
        module.op_mut(launch).erased = true;
        module.insert_op(parent, at_idx, new_l1);

        let done1 = module.result(new_l1, 0);
        let n_old = l1_data.results.len();
        let threaded_results: Vec<ValueId> = (0..threaded.len())
            .map(|i| module.result(new_l1, n_old + i))
            .collect();

        // Launch 2 on the same proc, dep = done1, captures = threaded vals.
        let old_ret_types: Vec<Type> = old_ret_operands
            .iter()
            .map(|v| module.value_type(*v).clone())
            .collect();
        let mut b = OpBuilder::after(module, new_l1);
        let mut result_types2 = vec![Type::Signal];
        result_types2.extend(old_ret_types);
        let mut spec = b
            .op("equeue.launch")
            .operand(done1)
            .operand(view.proc)
            .operands(threaded_results.iter().copied());
        for t in result_types2 {
            spec = spec.result(t);
        }
        let _launch2 = spec.region(region2).finish();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::{kinds, standard_registry, ArithBuilder, EqueueBuilder};
    use equeue_ir::verify_module;

    #[test]
    fn split_threads_values() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let x = ib.const_int(5, Type::I32);
            let y = ib.const_int(2, Type::I32);
            let s = ib.addi(x, y); // head: computes s
            let t = ib.muli(s, s); // tail will use s and t
            let _u = ib.addi(t, s);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        // Split after the addi (3 ops into the body).
        SplitLaunch::new(l.op, 3).run(&mut m).unwrap();
        let launches = m.find_all("equeue.launch");
        assert_eq!(launches.len(), 2);
        // Launch 2 depends on launch 1's done.
        let l2 = launches[1];
        assert_eq!(m.op(l2).operands[0], m.result(launches[0], 0));
        // s is threaded: launch 1 has an extra result captured by launch 2.
        assert_eq!(m.op(launches[0]).results.len(), 2);
        assert_eq!(m.op(l2).operands.len(), 3); // dep, proc, capture
        verify_module(&m, &standard_registry()).unwrap();
        let report = simulate(&m).unwrap();
        // addi(1) in launch1; muli(1)+addi(1) in launch2 = 3 cycles.
        assert_eq!(report.cycles, 3);
    }

    #[test]
    fn split_rejects_bad_index() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ret(vec![]);
        }
        assert!(SplitLaunch::new(l.op, 0).run(&mut m).is_err());
        assert!(SplitLaunch::new(l.op, 99).run(&mut m).is_err());
    }
}
