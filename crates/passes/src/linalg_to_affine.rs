//! `--convert-linalg-to-affine-loops`: lower Linalg named ops to explicit
//! affine loop nests (§VI-D-1).
//!
//! `linalg.conv2d` becomes the canonical six-deep nest over
//! `(N, Eh, Ew, C, Fh, Fw)` with explicit loads/stores; the outermost loop
//! is tagged with a `conv_nest` marker attribute (plus the dimensions) so
//! the [`FlattenConvLoops`](crate::FlattenConvLoops) pass can find and
//! restructure it.

use equeue_dialect::{conv2d_dims, AffineBuilder, ArithBuilder};
use equeue_ir::{IrError, IrResult, Module, OpBuilder, OpId, Pass, ValueId};

/// The Linalg→Affine conversion pass.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type, Pass};
/// use equeue_dialect::{AffineBuilder, LinalgBuilder};
/// use equeue_passes::ConvertLinalgToAffineLoops;
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let i = b.memref_alloc(Type::memref(vec![1, 4, 4], Type::I32));
/// let w = b.memref_alloc(Type::memref(vec![1, 1, 2, 2], Type::I32));
/// let o = b.memref_alloc(Type::memref(vec![1, 3, 3], Type::I32));
/// b.linalg_conv2d(i, w, o);
/// ConvertLinalgToAffineLoops.run(&mut m)?;
/// assert!(m.find_first("linalg.conv2d").is_none());
/// assert!(m.find_first("affine.for").is_some());
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertLinalgToAffineLoops;

impl Pass for ConvertLinalgToAffineLoops {
    fn name(&self) -> &str {
        "convert-linalg-to-affine-loops"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for op in module.find_all("linalg.conv2d") {
            lower_conv2d(module, op)?;
        }
        for op in module.find_all("linalg.matmul") {
            lower_matmul(module, op)?;
        }
        for op in module.find_all("linalg.fill") {
            lower_fill(module, op)?;
        }
        Ok(())
    }
}

fn lower_conv2d(module: &mut Module, op: OpId) -> IrResult<()> {
    let dims = conv2d_dims(module, op).map_err(|e| IrError::pass("convert-linalg", e))?;
    let (ifmap, weights, ofmap) = {
        let o = module.op(op).operands.clone();
        (o[0], o[1], o[2])
    };
    let mut b = OpBuilder::before(module, op);
    // for n / ey / ex / c / ky / kx
    let (for_n, body_n, iv_n) = b.affine_for(0, dims.n as i64, 1);
    b.module_mut()
        .op_mut(for_n)
        .attrs
        .set("conv_nest", equeue_ir::Attr::Unit);
    for (key, val) in [
        ("n", dims.n),
        ("eh", dims.eh()),
        ("ew", dims.ew()),
        ("c", dims.c),
        ("fh", dims.fh),
        ("fw", dims.fw),
    ] {
        b.module_mut().op_mut(for_n).attrs.set(key, val as i64);
    }

    let mut ib = OpBuilder::at_end(b.module_mut(), body_n);
    let (_, body_ey, iv_ey) = ib.affine_for(0, dims.eh() as i64, 1);
    ib.affine_yield();
    let mut ib = OpBuilder::at_end(module, body_ey);
    let (_, body_ex, iv_ex) = ib.affine_for(0, dims.ew() as i64, 1);
    ib.affine_yield();
    let mut ib = OpBuilder::at_end(module, body_ex);
    let (_, body_c, iv_c) = ib.affine_for(0, dims.c as i64, 1);
    ib.affine_yield();
    let mut ib = OpBuilder::at_end(module, body_c);
    let (_, body_ky, iv_ky) = ib.affine_for(0, dims.fh as i64, 1);
    ib.affine_yield();
    let mut ib = OpBuilder::at_end(module, body_ky);
    let (_, body_kx, iv_kx) = ib.affine_for(0, dims.fw as i64, 1);
    ib.affine_yield();

    // Innermost body: the multiply-accumulate.
    let mut kb = OpBuilder::at_end(module, body_kx);
    let iy = kb.addi(iv_ey, iv_ky);
    let ix = kb.addi(iv_ex, iv_kx);
    let a = kb.affine_load(ifmap, vec![iv_c, iy, ix]);
    let w = kb.affine_load(weights, vec![iv_n, iv_c, iv_ky, iv_kx]);
    let acc = kb.affine_load(ofmap, vec![iv_n, iv_ey, iv_ex]);
    let prod = kb.muli(a, w);
    let sum = kb.addi(acc, prod);
    kb.affine_store(sum, ofmap, vec![iv_n, iv_ey, iv_ex]);
    kb.affine_yield();

    module.erase_op(op);
    Ok(())
}

fn lower_matmul(module: &mut Module, op: OpId) -> IrResult<()> {
    let (a, bb, c) = {
        let o = module.op(op).operands.clone();
        (o[0], o[1], o[2])
    };
    let shape =
        |m: &Module, v: ValueId| -> Vec<usize> { m.value_type(v).shape().unwrap_or(&[]).to_vec() };
    let (ms, ks) = {
        let s = shape(module, a);
        (s[0] as i64, s[1] as i64)
    };
    let ns = shape(module, bb)[1] as i64;

    let mut b = OpBuilder::before(module, op);
    let (_, body_i, iv_i) = b.affine_for(0, ms, 1);
    let mut ib = OpBuilder::at_end(b.module_mut(), body_i);
    let (_, body_j, iv_j) = ib.affine_for(0, ns, 1);
    ib.affine_yield();
    let mut ib = OpBuilder::at_end(module, body_j);
    let (_, body_k, iv_k) = ib.affine_for(0, ks, 1);
    ib.affine_yield();
    let mut kb = OpBuilder::at_end(module, body_k);
    let av = kb.affine_load(a, vec![iv_i, iv_k]);
    let bv = kb.affine_load(bb, vec![iv_k, iv_j]);
    let cv = kb.affine_load(c, vec![iv_i, iv_j]);
    let prod = kb.muli(av, bv);
    let sum = kb.addi(cv, prod);
    kb.affine_store(sum, c, vec![iv_i, iv_j]);
    kb.affine_yield();

    module.erase_op(op);
    Ok(())
}

fn lower_fill(module: &mut Module, op: OpId) -> IrResult<()> {
    let (scalar, buf) = {
        let o = module.op(op).operands.clone();
        (o[0], o[1])
    };
    let shape = module.value_type(buf).shape().unwrap_or(&[]).to_vec();
    let mut ivs: Vec<ValueId> = vec![];
    let mut body = None;
    for (d, &dim) in shape.iter().enumerate() {
        let (inner, iv) = if d == 0 {
            let mut ib = OpBuilder::before(module, op);
            let (_, inner, iv) = ib.affine_for(0, dim as i64, 1);
            (inner, iv)
        } else {
            let Some(body) = body else {
                unreachable!("inner dimensions follow the first")
            };
            let mut ib = OpBuilder::at_end(module, body);
            let (_, inner, iv) = ib.affine_for(0, dim as i64, 1);
            ib.affine_yield();
            (inner, iv)
        };
        ivs.push(iv);
        body = Some(inner);
    }
    if let Some(body) = body {
        let mut kb = OpBuilder::at_end(module, body);
        kb.affine_store(scalar, buf, ivs);
        kb.affine_yield();
    }
    module.erase_op(op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{standard_registry, ConvDims, LinalgBuilder};
    use equeue_ir::{verify_module, Type};

    fn conv_module(d: ConvDims) -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let i = b.memref_alloc(Type::memref(vec![d.c, d.h, d.w], Type::I32));
        let w = b.memref_alloc(Type::memref(vec![d.n, d.c, d.fh, d.fw], Type::I32));
        let o = b.memref_alloc(Type::memref(vec![d.n, d.eh(), d.ew()], Type::I32));
        b.linalg_conv2d(i, w, o);
        m
    }

    #[test]
    fn conv_produces_six_loops() {
        let mut m = conv_module(ConvDims::square(4, 2, 2, 3));
        ConvertLinalgToAffineLoops.run(&mut m).unwrap();
        assert_eq!(m.find_all("affine.for").len(), 6);
        assert_eq!(m.find_all("affine.load").len(), 3);
        assert_eq!(m.find_all("affine.store").len(), 1);
        assert!(m.find_first("linalg.conv2d").is_none());
        verify_module(&m, &standard_registry()).unwrap();
        // Marker present with dims.
        let outer = m.find_first("affine.for").unwrap();
        assert!(m.op(outer).attrs.contains("conv_nest"));
        assert_eq!(m.op(outer).attrs.int("eh"), Some(3));
    }

    #[test]
    fn matmul_produces_three_loops() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let a = b.memref_alloc(Type::memref(vec![2, 3], Type::I32));
        let bb = b.memref_alloc(Type::memref(vec![3, 4], Type::I32));
        let c = b.memref_alloc(Type::memref(vec![2, 4], Type::I32));
        b.linalg_matmul(a, bb, c);
        ConvertLinalgToAffineLoops.run(&mut m).unwrap();
        assert_eq!(m.find_all("affine.for").len(), 3);
        verify_module(&m, &standard_registry()).unwrap();
    }

    #[test]
    fn fill_produces_rank_loops() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let zero = b.const_int(0, Type::I32);
        let buf = b.memref_alloc(Type::memref(vec![2, 5], Type::I32));
        b.linalg_fill(zero, buf);
        ConvertLinalgToAffineLoops.run(&mut m).unwrap();
        assert_eq!(m.find_all("affine.for").len(), 2);
        assert_eq!(m.find_all("affine.store").len(), 1);
        verify_module(&m, &standard_registry()).unwrap();
    }

    use equeue_dialect::arith::ArithBuilder;
}
