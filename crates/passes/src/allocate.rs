//! `--allocate-buffer` (§V-2): place `memref.alloc` buffers onto a specific
//! hardware memory component, turning them into `equeue.alloc`.

use equeue_ir::{IrResult, Module, OpBuilder, Pass, Type, ValueId};

/// The buffer-placement pass. Every `memref.alloc` is replaced by an
/// `equeue.alloc` on the given memory value.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type, Pass};
/// use equeue_dialect::{AffineBuilder, EqueueBuilder, kinds};
/// use equeue_passes::AllocateMemory;
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let sram = b.create_mem(kinds::SRAM, &[4096], 32, 4);
/// b.memref_alloc(Type::memref(vec![16], Type::I32));
/// AllocateMemory::new(sram).run(&mut m)?;
/// assert!(m.find_first("memref.alloc").is_none());
/// assert_eq!(m.find_all("equeue.alloc").len(), 1);
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocateMemory {
    mem: ValueId,
}

impl AllocateMemory {
    /// Places all memref buffers on `mem` (an `!equeue.mem` value).
    pub fn new(mem: ValueId) -> Self {
        AllocateMemory { mem }
    }
}

impl Pass for AllocateMemory {
    fn name(&self) -> &str {
        "allocate-buffer"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for op in module.find_all("memref.alloc") {
            let old_result = module.result(op, 0);
            let (shape, elem) = match module.value_type(old_result) {
                Type::MemRef { shape, elem } => (shape.clone(), (**elem).clone()),
                _ => continue,
            };
            let mem = self.mem;
            let mut b = OpBuilder::before(module, op);
            let new = b
                .op("equeue.alloc")
                .operand(mem)
                .result(Type::buffer(shape, elem))
                .finish();
            let new_result = module.result(new, 0);
            module.replace_all_uses(old_result, new_result);
            module.erase_op(op);
        }
        for op in module.find_all("memref.dealloc") {
            let target = module.op(op).operands[0];
            if matches!(module.value_type(target), Type::Buffer { .. }) {
                let mut b = OpBuilder::before(module, op);
                b.op("equeue.dealloc").operand(target).finish();
                module.erase_op(op);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, standard_registry, AffineBuilder, ArithBuilder, EqueueBuilder};
    use equeue_ir::verify_module;

    #[test]
    fn rewrites_allocs_and_uses() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let sram = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let buf = b.memref_alloc(Type::memref(vec![4, 4], Type::I32));
        let i = b.const_index(0);
        b.affine_load(buf, vec![i, i]);
        b.memref_dealloc(buf);

        AllocateMemory::new(sram).run(&mut m).unwrap();
        assert!(m.find_first("memref.alloc").is_none());
        assert!(m.find_first("memref.dealloc").is_none());
        assert_eq!(m.find_all("equeue.alloc").len(), 1);
        assert_eq!(m.find_all("equeue.dealloc").len(), 1);
        let load = m.find_first("affine.load").unwrap();
        assert!(matches!(
            m.value_type(m.op(load).operands[0]),
            Type::Buffer { .. }
        ));
        verify_module(&m, &standard_registry()).unwrap();
    }

    #[test]
    fn buffer_type_preserves_shape_and_elem() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let sram = b.create_mem(kinds::SRAM, &[4096], 64, 4);
        b.memref_alloc(Type::memref(vec![2, 3], Type::I64));
        AllocateMemory::new(sram).run(&mut m).unwrap();
        let alloc = m.find_first("equeue.alloc").unwrap();
        assert_eq!(
            *m.value_type(m.result(alloc, 0)),
            Type::buffer(vec![2, 3], Type::I64)
        );
    }
}
