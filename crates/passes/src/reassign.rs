//! `--reassign-buffer` (§V-8): replace the uses of one buffer with another
//! (e.g. turn SRAM accesses into PE-register accesses).

use equeue_ir::{IrResult, Module, Pass, ValueId};

/// The buffer-reassignment pass.
///
/// Every use of `from` — in reads, writes, memcpys, and launch captures —
/// is replaced by `to`. The defining `alloc` of `from` is left in place
/// (dead-code elimination can clean it up if it becomes unused).
#[derive(Debug, Clone, Copy)]
pub struct ReassignBuffer {
    from: ValueId,
    to: ValueId,
}

impl ReassignBuffer {
    /// Replaces uses of buffer `from` with buffer `to`.
    pub fn new(from: ValueId, to: ValueId) -> Self {
        ReassignBuffer { from, to }
    }
}

impl Pass for ReassignBuffer {
    fn name(&self) -> &str {
        "reassign-buffer"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        module.replace_all_uses(self.from, self.to);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::{kinds, standard_registry, EqueueBuilder};
    use equeue_ir::{verify_module, OpBuilder, Type};

    #[test]
    fn sram_reads_become_register_reads() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let sram = b.create_mem(kinds::SRAM, &[64], 32, 1);
        let reg = b.create_mem(kinds::REGISTER, &[64], 32, 1);
        let sbuf = b.alloc(sram, &[4], Type::I32);
        let rbuf = b.alloc(reg, &[4], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[sbuf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        // Before reassignment the read hits SRAM: 4 cycles on 1 bank.
        let before = simulate(&m).unwrap();
        assert_eq!(before.cycles, 4);

        ReassignBuffer::new(sbuf, rbuf).run(&mut m).unwrap();
        verify_module(&m, &standard_registry()).unwrap();
        let after = simulate(&m).unwrap();
        // Register access is free.
        assert_eq!(after.cycles, 0);
        assert_eq!(after.memory_named("SRAM").unwrap().reads, 0);
    }
}
