//! The memcpy family of passes (§V-4, §V-5, §V-7):
//!
//! * [`InsertMemcpy`] — add a DMA copy from one buffer to another before
//!   the first launch, rechaining that launch's dependency.
//! * [`MemcpyToLaunch`] — desugar an `equeue.memcpy` into an equivalent
//!   `equeue.launch` on the DMA whose body reads then writes.
//! * [`MergeMemcpyLaunch`] — fold a memcpy into the launch that depends on
//!   it, when the launch accesses the same buffer.

use equeue_dialect::{memcpy_view, read_view, write_view};
use equeue_ir::{IrError, IrResult, Module, OpBuilder, Pass, Type, ValueId};

/// Inserts `%done = equeue.memcpy(%start, src, dst, dma)` before the first
/// `equeue.launch` and makes that launch depend on `%done` (§V-4).
#[derive(Debug, Clone, Copy)]
pub struct InsertMemcpy {
    src: ValueId,
    dst: ValueId,
    dma: ValueId,
}

impl InsertMemcpy {
    /// Copies `src` into `dst` using `dma`.
    pub fn new(src: ValueId, dst: ValueId, dma: ValueId) -> Self {
        InsertMemcpy { src, dst, dma }
    }
}

impl Pass for InsertMemcpy {
    fn name(&self) -> &str {
        "mem-copy"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        let launch = module
            .find_first("equeue.launch")
            .ok_or_else(|| IrError::pass("mem-copy", "no equeue.launch to rechain"))?;
        let (src, dst, dma) = (self.src, self.dst, self.dma);
        let mut b = OpBuilder::before(module, launch);
        let start = b
            .op("equeue.control_start")
            .result(Type::Signal)
            .finish_value();
        let done = b
            .op("equeue.memcpy")
            .attr("segments", vec![1, 1, 1, 1, 0])
            .operands(vec![start, src, dst, dma])
            .result(Type::Signal)
            .finish_value();
        module.set_operand(launch, 0, done);
        Ok(())
    }
}

/// Rewrites every `equeue.memcpy` into a `launch` on its DMA engine whose
/// body is `read(src); write(dst)` (§V-5). The desugared form serialises
/// the two legs, so it is a slightly conservative model of the same copy.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemcpyToLaunch;

impl Pass for MemcpyToLaunch {
    fn name(&self) -> &str {
        "memcpy-to-launch"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for op in module.find_all("equeue.memcpy") {
            let view = memcpy_view(module, op).map_err(|e| IrError::pass(self.name(), e))?;
            let buf_ty = module.value_type(view.src).clone();
            let elem = buf_ty.elem().cloned().unwrap_or(Type::Any);
            let n = buf_ty.num_elements().unwrap_or(1);
            let data_ty = if n <= 1 {
                elem
            } else {
                match buf_ty.shape() {
                    Some(s) => Type::tensor(s.to_vec(), elem),
                    None => unreachable!("n > 1 implies a shaped buffer"),
                }
            };

            let region = module.new_region(None);
            let body = module.new_block(
                region,
                vec![buf_ty.clone(), module.value_type(view.dst).clone()],
            );
            let (arg_src, arg_dst) = {
                let args = &module.block(body).args;
                (args[0], args[1])
            };
            {
                let mut ib = OpBuilder::at_end(module, body);
                let data = ib
                    .op("equeue.read")
                    .attr("segments", vec![1, 0, 0])
                    .operand(arg_src)
                    .result(data_ty)
                    .finish_value();
                ib.op("equeue.write")
                    .attr("segments", vec![1, 1, 0, 0])
                    .operand(data)
                    .operand(arg_dst)
                    .finish();
                ib.op("equeue.return").finish();
            }
            let old_done = module.result(op, 0);
            let mut b = OpBuilder::before(module, op);
            let launch = b
                .op("equeue.launch")
                .operand(view.dep)
                .operand(view.dma)
                .operand(view.src)
                .operand(view.dst)
                .result(Type::Signal)
                .region(region)
                .finish();
            let new_done = module.result(launch, 0);
            module.replace_all_uses(old_done, new_done);
            module.erase_op(op);
        }
        Ok(())
    }
}

/// Folds a memcpy into the launch that depends on it when the launch body
/// accesses the copy's destination buffer (§V-7): the launch's dependency
/// reverts to the memcpy's, the body gains a leading whole-buffer
/// `read(src)`+`write(dst)`, and the memcpy disappears.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeMemcpyLaunch;

impl Pass for MergeMemcpyLaunch {
    fn name(&self) -> &str {
        "merge-memcpy-launch"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        for mc in module.find_all("equeue.memcpy") {
            let view = match memcpy_view(module, mc) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let done = module.result(mc, 0);
            // Find a launch whose dep is this memcpy's done and whose body
            // touches dst (directly or via captures).
            let mut target = None;
            for l in module.find_all("equeue.launch") {
                if module.op(l).operands.first() != Some(&done) {
                    continue;
                }
                let lv = match equeue_dialect::launch_view(module, l) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let mut touches = lv.captures.contains(&view.dst);
                let body_ops = module.region_ops(module.op(l).regions[0]);
                for &bo in &body_ops {
                    let name = &module.op(bo).name;
                    if name == "equeue.read" {
                        if let Ok(rv) = read_view(module, bo) {
                            touches |= rv.buffer == view.dst;
                        }
                    } else if name == "equeue.write" {
                        if let Ok(wv) = write_view(module, bo) {
                            touches |= wv.buffer == view.dst;
                        }
                    }
                }
                if touches {
                    target = Some(l);
                    break;
                }
            }
            let Some(launch) = target else { continue };

            // Rechain the launch to the memcpy's dependency.
            module.set_operand(launch, 0, view.dep);
            // Prepend read(src); write(dst) to the body.
            let body = module.region(module.op(launch).regions[0]).blocks[0];
            let buf_ty = module.value_type(view.src).clone();
            let elem = buf_ty.elem().cloned().unwrap_or(Type::Any);
            let n = buf_ty.num_elements().unwrap_or(1);
            let data_ty = if n <= 1 {
                elem
            } else {
                match buf_ty.shape() {
                    Some(s) => Type::tensor(s.to_vec(), elem),
                    None => unreachable!("n > 1 implies a shaped buffer"),
                }
            };
            {
                let mut ib = OpBuilder::at(module, body, 0);
                let data = ib
                    .op("equeue.read")
                    .attr("segments", vec![1, 0, 0])
                    .operand(view.src)
                    .result(data_ty)
                    .finish_value();
                ib.op("equeue.write")
                    .attr("segments", vec![1, 1, 0, 0])
                    .operand(data)
                    .operand(view.dst)
                    .finish();
            }
            // Any other user of the memcpy's done now uses the launch done.
            let launch_done = module.result(launch, 0);
            module.replace_all_uses(done, launch_done);
            // …except the launch's own dependency, restored above.
            module.set_operand(launch, 0, view.dep);
            module.erase_op(mc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_core::simulate;
    use equeue_dialect::{kinds, standard_registry, EqueueBuilder};
    use equeue_ir::verify_module;

    fn base_module() -> (Module, ValueId, ValueId, ValueId, ValueId) {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let sram = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let reg = b.create_mem(kinds::REGISTER, &[64], 32, 1);
        let dma = b.create_dma();
        let src = b.alloc(sram, &[16], Type::I32);
        let dst = b.alloc(reg, &[16], Type::I32);
        (m, pe, dma, src, dst)
    }

    #[test]
    fn insert_memcpy_rechains_launch() {
        let (mut m, pe, dma, src, dst) = base_module();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let l = b.launch(start, pe, &[dst], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        InsertMemcpy::new(src, dst, dma).run(&mut m).unwrap();
        let mc = m.find_first("equeue.memcpy").unwrap();
        let launch = m.find_first("equeue.launch").unwrap();
        assert_eq!(m.op(launch).operands[0], m.result(mc, 0));
        verify_module(&m, &standard_registry()).unwrap();
        simulate(&m).unwrap();
    }

    #[test]
    fn memcpy_to_launch_desugars() {
        let (mut m, _pe, dma, src, dst) = base_module();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let done = b.memcpy(start, src, dst, dma, None);
        b.await_all(vec![done]);

        MemcpyToLaunch.run(&mut m).unwrap();
        assert!(m.find_first("equeue.memcpy").is_none());
        let launch = m.find_first("equeue.launch").unwrap();
        let body_ops = m.region_ops(m.op(launch).regions[0]);
        let names: Vec<&str> = body_ops.iter().map(|&o| m.op(o).name.as_str()).collect();
        assert_eq!(names, vec!["equeue.read", "equeue.write", "equeue.return"]);
        verify_module(&m, &standard_registry()).unwrap();
        let report = simulate(&m).unwrap();
        // 16 elems from 4-bank SRAM = 4 read cycles, register write free.
        assert_eq!(report.cycles, 4);
    }

    #[test]
    fn merge_memcpy_into_launch() {
        let (mut m, pe, dma, src, dst) = base_module();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let cp_done = b.memcpy(start, src, dst, dma, None);
        let l = b.launch(cp_done, pe, &[dst], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        MergeMemcpyLaunch.run(&mut m).unwrap();
        assert!(m.find_first("equeue.memcpy").is_none());
        let launch = m.find_first("equeue.launch").unwrap();
        // Dep restored to the memcpy's original dependency (control_start).
        let dep = m.op(launch).operands[0];
        let cs = m.find_first("equeue.control_start").unwrap();
        assert_eq!(dep, m.result(cs, 0));
        // Body gained the copy.
        let body_ops = m.region_ops(m.op(launch).regions[0]);
        assert_eq!(m.op(body_ops[0]).name, "equeue.read");
        assert_eq!(m.op(body_ops[1]).name, "equeue.write");
        verify_module(&m, &standard_registry()).unwrap();
        simulate(&m).unwrap();
    }
}
