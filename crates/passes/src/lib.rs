//! # equeue-passes — reusable lowering passes (§V)
//!
//! The paper's central workflow claim is that *compiler passes, not
//! simulator edits*, are how designers explore accelerator variants. This
//! crate implements the ten reusable passes of §V plus the standard
//! Linalg→Affine conversion the pipeline starts from:
//!
//! | paper pass | type |
//! |---|---|
//! | `--convert-linalg-to-affine-loops` | [`ConvertLinalgToAffineLoops`] |
//! | 1. EQueue read/write | [`EqueueReadWrite`] |
//! | 2. Allocate memory | [`AllocateMemory`] |
//! | 3. Launch | [`WrapInLaunch`] |
//! | 4. Memcpy | [`InsertMemcpy`] |
//! | 5. Memcpy to launch | [`MemcpyToLaunch`] |
//! | 6. Split launch | [`SplitLaunch`] |
//! | 7. Merge memcpy launch | [`MergeMemcpyLaunch`] |
//! | 8. Reassign buffer | [`ReassignBuffer`] |
//! | 9. Parallel to EQueue | [`ParallelToEqueue`] |
//! | 10. Lower extraction | [`LowerExtraction`] |
//! | loop flattening (§VI-D-2) | [`FlattenConvLoops`] |
//!
//! All passes implement [`equeue_ir::Pass`] and compose through
//! [`equeue_ir::PassManager`]. Parameterised passes (processor, memory,
//! buffers) take the SSA values of the components they operate on, exactly
//! like the paper's pass options name components.
//!
//! ## Example: Linalg → Affine → EQueue data movement
//!
//! ```
//! use equeue_ir::{Module, OpBuilder, Type, PassManager};
//! use equeue_dialect::{standard_registry, AffineBuilder, EqueueBuilder, LinalgBuilder, kinds};
//! use equeue_passes::{AllocateMemory, ConvertLinalgToAffineLoops, EqueueReadWrite};
//!
//! let mut m = Module::new();
//! let blk = m.top_block();
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! let sram = b.create_mem(kinds::SRAM, &[4096], 32, 4);
//! let i = b.memref_alloc(Type::memref(vec![1, 4, 4], Type::I32));
//! let w = b.memref_alloc(Type::memref(vec![1, 1, 2, 2], Type::I32));
//! let o = b.memref_alloc(Type::memref(vec![1, 3, 3], Type::I32));
//! b.linalg_conv2d(i, w, o);
//!
//! let mut pm = PassManager::new(standard_registry());
//! pm.add(ConvertLinalgToAffineLoops)
//!   .add(AllocateMemory::new(sram))
//!   .add(EqueueReadWrite);
//! pm.run(&mut m)?;
//! assert!(m.find_first("equeue.read").is_some());
//! # Ok::<(), equeue_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod allocate;
mod canonicalize;
mod flatten;
mod launch;
mod linalg_to_affine;
mod memcpy;
mod parallel;
mod read_write;
mod reassign;
mod split;

pub use allocate::AllocateMemory;
pub use canonicalize::Canonicalize;
pub use flatten::{Dataflow, FlattenConvLoops};
pub use launch::WrapInLaunch;
pub use linalg_to_affine::ConvertLinalgToAffineLoops;
pub use memcpy::{InsertMemcpy, MemcpyToLaunch, MergeMemcpyLaunch};
pub use parallel::{LowerExtraction, ParallelToEqueue};
pub use read_write::EqueueReadWrite;
pub use reassign::ReassignBuffer;
pub use split::SplitLaunch;
