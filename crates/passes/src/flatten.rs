//! Convolution-loop flattening (§VI-D-2): restructure the canonical
//! six-deep conv nest into three loops whose order reflects the dataflow's
//! stationary dimension.
//!
//! The paper flattens `(Eh, Ew, N, Fh, Fw, C)` into three dimensions —
//! `Eh·Ew`, `N`, and `Fh·Fw·C` — and orders them so the stationary operand
//! stays innermost-resident:
//!
//! * **WS** (weight stationary): `k (=Fh·Fw·C) → n → e`, each weight is
//!   reused by `Eh·Ew` ifmaps;
//! * **IS** (input stationary): `k → e → n`, each ifmap patch is reused by
//!   `N` weights;
//! * **OS** (output stationary): `n → e → k`, each ofmap accumulates
//!   `Fh·Fw·C` products in place.

use equeue_dialect::{AffineBuilder, ArithBuilder};
use equeue_ir::{IrError, IrResult, Module, OpBuilder, OpId, Pass, ValueId};

/// The three systolic dataflows of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weight stationary.
    Ws,
    /// Input stationary.
    Is,
    /// Output stationary.
    Os,
}

impl Dataflow {
    /// Display name as in the paper ("WS"/"IS"/"OS").
    pub fn as_str(self) -> &'static str {
        match self {
            Dataflow::Ws => "WS",
            Dataflow::Is => "IS",
            Dataflow::Os => "OS",
        }
    }

    /// All three dataflows.
    pub fn all() -> [Dataflow; 3] {
        [Dataflow::Ws, Dataflow::Is, Dataflow::Os]
    }
}

/// The conv-nest flattening pass.
#[derive(Debug, Clone, Copy)]
pub struct FlattenConvLoops {
    dataflow: Dataflow,
}

impl FlattenConvLoops {
    /// Flattens every marked conv nest for `dataflow`.
    pub fn new(dataflow: Dataflow) -> Self {
        FlattenConvLoops { dataflow }
    }
}

impl Pass for FlattenConvLoops {
    fn name(&self) -> &str {
        "flatten-conv-loops"
    }

    fn run(&mut self, module: &mut Module) -> IrResult<()> {
        let marked: Vec<OpId> = module
            .find_all("affine.for")
            .into_iter()
            .filter(|&op| module.op(op).attrs.contains("conv_nest"))
            .collect();
        for op in marked {
            self.flatten_one(module, op)?;
        }
        Ok(())
    }
}

/// The three flattened dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    /// `Eh·Ew` output pixels.
    E,
    /// `N` filters.
    N,
    /// `Fh·Fw·C` filter elements.
    K,
}

impl FlattenConvLoops {
    fn flatten_one(&self, module: &mut Module, outer: OpId) -> IrResult<()> {
        let attrs = module.op(outer).attrs.clone();
        let geti = |k: &str| -> IrResult<usize> {
            attrs
                .int(k)
                .map(|v| v as usize)
                .ok_or_else(|| IrError::pass("flatten-conv-loops", format!("missing '{k}'")))
        };
        let (n, eh, ew, c, fh, fw) = (
            geti("n")?,
            geti("eh")?,
            geti("ew")?,
            geti("c")?,
            geti("fh")?,
            geti("fw")?,
        );

        // Recover the three buffers from the innermost loads/stores.
        let mut loads: Vec<OpId> = vec![];
        let mut store: Option<OpId> = None;
        let region = module.op(outer).regions[0];
        for op in module.region_ops(region) {
            match module.op(op).name.as_str() {
                "affine.load" => loads.push(op),
                "affine.store" => store = Some(op),
                _ => {}
            }
        }
        if loads.len() != 3 || store.is_none() {
            return Err(IrError::pass(
                "flatten-conv-loops",
                "conv nest body does not match the canonical form",
            ));
        }
        let ifmap = module.op(loads[0]).operands[0];
        let weights = module.op(loads[1]).operands[0];
        let ofmap = module.op(loads[2]).operands[0];

        let order: [Dim; 3] = match self.dataflow {
            Dataflow::Ws => [Dim::K, Dim::N, Dim::E],
            Dataflow::Is => [Dim::K, Dim::E, Dim::N],
            Dataflow::Os => [Dim::N, Dim::E, Dim::K],
        };
        let extent = |d: Dim| -> i64 {
            match d {
                Dim::E => (eh * ew) as i64,
                Dim::N => n as i64,
                Dim::K => (fh * fw * c) as i64,
            }
        };

        // Build the three-loop nest before the old one.
        let mut ivs: Vec<(Dim, ValueId)> = vec![];
        let mut body = None;
        for (d, dim) in order.into_iter().enumerate() {
            let (inner, iv) = if d == 0 {
                let mut b = OpBuilder::before(module, outer);
                let (op, inner, iv) = b.affine_for(0, extent(dim), 1);
                b.module_mut()
                    .op_mut(op)
                    .attrs
                    .set("flattened", self.dataflow.as_str());
                (inner, iv)
            } else {
                let Some(body) = body else {
                    unreachable!("inner dimensions follow the first")
                };
                let mut b = OpBuilder::at_end(module, body);
                let (_, inner, iv) = b.affine_for(0, extent(dim), 1);
                b.affine_yield();
                (inner, iv)
            };
            ivs.push((dim, iv));
            body = Some(inner);
        }
        let Some(body) = body else {
            unreachable!("the dim list is never empty")
        };

        // Recover the six original indices and rebuild the MAC body.
        let mut kb = OpBuilder::at_end(module, body);
        let iv_of = |d: Dim, ivs: &[(Dim, ValueId)]| match ivs.iter().find(|(x, _)| *x == d) {
            Some((_, iv)) => *iv,
            None => unreachable!("every dim was pushed above"),
        };
        let e = iv_of(Dim::E, &ivs);
        let nn = iv_of(Dim::N, &ivs);
        let k = iv_of(Dim::K, &ivs);
        let cew = kb.const_index(ew as i64);
        let ey = kb.divi(e, cew);
        let ex = kb.remi(e, cew);
        let cfhfw = kb.const_index((fh * fw) as i64);
        let cc = kb.divi(k, cfhfw);
        let rem = kb.remi(k, cfhfw);
        let cfw = kb.const_index(fw as i64);
        let ky = kb.divi(rem, cfw);
        let kx = kb.remi(rem, cfw);
        let iy = kb.addi(ey, ky);
        let ix = kb.addi(ex, kx);
        let a = kb.affine_load(ifmap, vec![cc, iy, ix]);
        let w = kb.affine_load(weights, vec![nn, cc, ky, kx]);
        let acc = kb.affine_load(ofmap, vec![nn, ey, ex]);
        let prod = kb.muli(a, w);
        let sum = kb.addi(acc, prod);
        kb.affine_store(sum, ofmap, vec![nn, ey, ex]);
        kb.affine_yield();

        module.erase_op(outer);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvertLinalgToAffineLoops;
    use equeue_dialect::{standard_registry, ConvDims, LinalgBuilder};
    use equeue_ir::{verify_module, Type};

    fn conv_module(d: ConvDims) -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let i = b.memref_alloc(Type::memref(vec![d.c, d.h, d.w], Type::I32));
        let w = b.memref_alloc(Type::memref(vec![d.n, d.c, d.fh, d.fw], Type::I32));
        let o = b.memref_alloc(Type::memref(vec![d.n, d.eh(), d.ew()], Type::I32));
        b.linalg_conv2d(i, w, o);
        m
    }

    #[test]
    fn flattens_to_three_loops() {
        for df in Dataflow::all() {
            let mut m = conv_module(ConvDims::square(4, 2, 2, 3));
            ConvertLinalgToAffineLoops.run(&mut m).unwrap();
            FlattenConvLoops::new(df).run(&mut m).unwrap();
            assert_eq!(m.find_all("affine.for").len(), 3, "{df:?}");
            let outer = m.find_all("affine.for")[0];
            assert_eq!(m.op(outer).attrs.str("flattened"), Some(df.as_str()));
            verify_module(&m, &standard_registry()).unwrap();
        }
    }

    #[test]
    fn loop_extents_reflect_dims() {
        let d = ConvDims::square(6, 3, 2, 4); // Eh=Ew=4, K=3*3*2=18
        let mut m = conv_module(d);
        ConvertLinalgToAffineLoops.run(&mut m).unwrap();
        FlattenConvLoops::new(Dataflow::Ws).run(&mut m).unwrap();
        let fors = m.find_all("affine.for");
        let uppers: Vec<i64> = fors
            .iter()
            .map(|&f| m.op(f).attrs.int("upper").unwrap())
            .collect();
        // WS order: K, N, E.
        assert_eq!(uppers, vec![18, 4, 16]);
    }

    #[test]
    fn dataflow_names() {
        assert_eq!(Dataflow::Ws.as_str(), "WS");
        assert_eq!(Dataflow::Is.as_str(), "IS");
        assert_eq!(Dataflow::Os.as_str(), "OS");
        assert_eq!(Dataflow::all().len(), 3);
    }
}
